package flatmap

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New(4)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Set(1, 10)
	m.Set(2, 20)
	m.Set(1, 11) // replace
	if v, ok := m.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %d,%v want 11,true", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d want 2", m.Len())
	}
	m.Delete(1)
	if _, ok := m.Get(1); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := m.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) after delete = %d,%v want 20,true", v, ok)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Map
	if _, ok := m.Get(7); ok {
		t.Fatal("zero-value map reported a hit")
	}
	m.Delete(7) // must not panic
	m.Set(7, 70)
	if v, ok := m.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = %d,%v want 70,true", v, ok)
	}
}

// TestAgainstReference fuzzes the map against a builtin map through a long
// churn sequence, exercising growth and backward-shift deletion.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := New(0)
	ref := map[uint64]int32{}
	keys := make([]uint64, 0, 4096)
	for step := 0; step < 200_000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			k := uint64(rng.Intn(2000))*64 + 0xF000_0000 // line-shaped keys
			v := int32(rng.Intn(1 << 20))
			m.Set(k, v)
			if _, seen := ref[k]; !seen {
				keys = append(keys, k)
			}
			ref[k] = v
		case op < 8: // delete (possibly absent)
			var k uint64
			if len(keys) > 0 && rng.Intn(4) > 0 {
				k = keys[rng.Intn(len(keys))]
			} else {
				k = uint64(rng.Intn(2000))*64 + 0xF000_0000
			}
			m.Delete(k)
			delete(ref, k)
		default: // lookup
			k := uint64(rng.Intn(2000))*64 + 0xF000_0000
			v, ok := m.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("step %d: Get(%#x) = %d,%v want %d,%v", step, k, v, ok, rv, rok)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d want %d", step, m.Len(), len(ref))
		}
	}
	for k, rv := range ref {
		if v, ok := m.Get(k); !ok || v != rv {
			t.Fatalf("final: Get(%#x) = %d,%v want %d,true", k, v, ok, rv)
		}
	}
}

func TestSteadyStateNoAllocs(t *testing.T) {
	m := New(64)
	for i := uint64(0); i < 32; i++ {
		m.Set(i*64, int32(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		m.Set(99*64, 99)
		if _, ok := m.Get(13 * 64); !ok {
			t.Fatal("miss")
		}
		m.Delete(99 * 64)
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocated %v times per run", allocs)
	}
}
