// Package flatmap provides a small open-addressed hash map from uint64 keys
// to int32 values, built for the simulator's per-cycle lookup structures
// (MSHR tags, block-start indices). Unlike the built-in map it performs no
// allocation on lookup, insert or delete once grown to its steady-state
// size, and its iteration-free API keeps the hot path branch-predictable.
//
// The table uses linear probing with backward-shift deletion (no
// tombstones), so probe sequences stay short regardless of churn — exactly
// the access pattern of MSHRs, which allocate and free entries millions of
// times per simulated second.
package flatmap

const (
	// minCapacity keeps the table large enough that tiny maps do not rehash
	// on their first few inserts.
	minCapacity = 16
	// maxLoadNum/maxLoadDen is the grow threshold (13/16 ≈ 0.81).
	maxLoadNum = 13
	maxLoadDen = 16
)

// Map is an open-addressed uint64 → int32 hash map. The zero value is ready
// to use. Map is not safe for concurrent use.
type Map struct {
	keys []uint64
	vals []int32
	used []bool
	n    int
	mask uint64
}

// New returns a map pre-sized to hold at least hint entries without
// rehashing.
func New(hint int) *Map {
	m := &Map{}
	m.init(capacityFor(hint))
	return m
}

func capacityFor(hint int) int {
	c := minCapacity
	for c*maxLoadNum/maxLoadDen < hint {
		c *= 2
	}
	return c
}

func (m *Map) init(capacity int) {
	m.keys = make([]uint64, capacity)
	m.vals = make([]int32, capacity)
	m.used = make([]bool, capacity)
	m.n = 0
	m.mask = uint64(capacity - 1)
}

// home returns the key's preferred slot (Fibonacci hashing spreads the
// line/address keys, which share low-bit structure, across the table).
func (m *Map) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

// Len returns the number of entries.
func (m *Map) Len() int { return m.n }

// Get returns the value stored for key.
func (m *Map) Get(key uint64) (int32, bool) {
	if m.used == nil {
		return 0, false
	}
	for i := m.home(key); m.used[i]; i = (i + 1) & m.mask {
		if m.keys[i] == key {
			return m.vals[i], true
		}
	}
	return 0, false
}

// Set inserts or replaces the value for key.
func (m *Map) Set(key uint64, val int32) {
	if m.used == nil {
		m.init(minCapacity)
	}
	if (m.n+1)*maxLoadDen > len(m.keys)*maxLoadNum {
		m.grow()
	}
	i := m.home(key)
	for m.used[i] {
		if m.keys[i] == key {
			m.vals[i] = val
			return
		}
		i = (i + 1) & m.mask
	}
	m.keys[i], m.vals[i], m.used[i] = key, val, true
	m.n++
}

// Delete removes key if present, using backward-shift deletion so the table
// never accumulates tombstones.
func (m *Map) Delete(key uint64) {
	if m.used == nil {
		return
	}
	i := m.home(key)
	for {
		if !m.used[i] {
			return
		}
		if m.keys[i] == key {
			break
		}
		i = (i + 1) & m.mask
	}
	m.n--
	// Shift later entries of the same probe cluster back into the hole.
	j := i
	for {
		m.used[i] = false
		for {
			j = (j + 1) & m.mask
			if !m.used[j] {
				return
			}
			k := m.home(m.keys[j])
			// Move j's entry into the hole at i unless its home lies
			// cyclically within (i, j], in which case it is already as close
			// to home as it can get.
			inRange := false
			if i <= j {
				inRange = i < k && k <= j
			} else {
				inRange = i < k || k <= j
			}
			if !inRange {
				break
			}
		}
		m.keys[i], m.vals[i], m.used[i] = m.keys[j], m.vals[j], true
		i = j
	}
}

// Clone returns an independent deep copy of the map: same contents, same
// capacity, no shared backing storage.
func (m *Map) Clone() Map {
	c := *m
	if m.keys != nil {
		c.keys = append([]uint64(nil), m.keys...)
		c.vals = append([]int32(nil), m.vals...)
		c.used = append([]bool(nil), m.used...)
	}
	return c
}

// Reset empties the map, keeping its capacity.
func (m *Map) Reset() {
	for i := range m.used {
		m.used[i] = false
	}
	m.n = 0
}

func (m *Map) grow() {
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	m.init(len(oldKeys) * 2)
	for i, u := range oldUsed {
		if u {
			m.Set(oldKeys[i], oldVals[i])
		}
	}
}
