package experiments

import (
	"strings"
	"testing"

	"boomsim/internal/workload"
)

// tiny returns the smallest parameter set that still exercises the full
// experiment machinery.
func tiny(t *testing.T, names ...string) Params {
	t.Helper()
	p := Quick()
	p.FootprintKB = 256
	p.WarmInstrs = 50_000
	p.MeasureInstrs = 200_000
	if len(names) > 0 {
		p.Workloads = nil
		for _, n := range names {
			w, ok := workload.ByName(n)
			if !ok {
				t.Fatalf("unknown workload %s", n)
			}
			p.Workloads = append(p.Workloads, w)
		}
	}
	return p
}

func TestTableBasics(t *testing.T) {
	tb := NewTable("demo", []string{"r1", "r2"}, []string{"c1", "c2"})
	tb.Set("r1", "c2", 3.5)
	if tb.Get("r1", "c2") != 3.5 {
		t.Fatal("set/get roundtrip failed")
	}
	tb.AddAvgRow()
	if tb.Get("Avg", "c2") != 1.75 {
		t.Fatalf("avg row wrong: %v", tb.Get("Avg", "c2"))
	}
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "Avg") {
		t.Fatal("formatting lost content")
	}
}

func TestTablePanicsOnUnknownName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb := NewTable("demo", []string{"r"}, []string{"c"})
	tb.Set("nope", "c", 1)
}

func TestFig1(t *testing.T) {
	tab, err := Fig1(tiny(t, "Apache"))
	if err != nil {
		t.Fatal(err)
	}
	l1 := tab.Get("Apache", "Perfect L1-I")
	both := tab.Get("Apache", "Perfect L1-I + BTB")
	if l1 <= 1.0 {
		t.Fatalf("perfect L1-I speedup %v <= 1", l1)
	}
	if both <= l1 {
		t.Fatalf("perfect BTB adds nothing: %v <= %v", both, l1)
	}
}

func TestFig2(t *testing.T) {
	tab, err := Fig2(tiny(t, "Apache"), []int{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"LLC=10", "LLC=50"} {
		tage := tab.Get(row, "FDIP TAGE")
		if tage < 0.2 || tage > 1 {
			t.Fatalf("%s FDIP TAGE coverage %v implausible", row, tage)
		}
		nt := tab.Get(row, "FDIP Never-Taken")
		if nt < 0.1 {
			t.Fatalf("never-taken coverage %v too low — paper says it retains much of the benefit", nt)
		}
	}
}

func TestFig3(t *testing.T) {
	tab, err := Fig3(tiny(t, "Apache"))
	if err != nil {
		t.Fatal(err)
	}
	baseTotal := tab.Get("Base 2KBTB", "Total%")
	if baseTotal < 99 || baseTotal > 101 {
		t.Fatalf("Base total should be ~100%%, got %v", baseTotal)
	}
	seq := tab.Get("Base 2KBTB", "Sequential%")
	if seq < 30 {
		t.Fatalf("sequential share %v%% too small (paper: 40-54%%)", seq)
	}
	if tab.Get("FDIP 32KBTB", "Total%") >= baseTotal {
		t.Fatal("FDIP-32K must reduce stall cycles vs Base")
	}
	// The 2K->32K BTB improvement should be visible in unconditional misses.
	if tab.Get("FDIP 32KBTB", "Unconditional%") > tab.Get("FDIP 2KBTB", "Unconditional%") {
		t.Fatal("bigger BTB should not increase unconditional misses")
	}
}

func TestFig4(t *testing.T) {
	tab, err := Fig4(tiny(t, "Apache", "DB2"), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"Apache", "DB2"} {
		if cdf4 := tab.Get(w, "4"); cdf4 < 0.8 {
			t.Fatalf("%s: CDF(4 blocks)=%v, paper says ~0.92", w, cdf4)
		}
		if last := tab.Get(w, "8+"); last < 0.999 {
			t.Fatalf("%s: CDF must reach 1, got %v", w, last)
		}
	}
}

func TestFig5(t *testing.T) {
	tab, err := Fig5(tiny(t, "Apache"), []int{30}, []int{2048, 32768})
	if err != nil {
		t.Fatal(err)
	}
	small := tab.Get("LLC=30", "BTB2K")
	big := tab.Get("LLC=30", "BTB32K")
	if big < small {
		t.Fatalf("bigger BTB lowered coverage: %v < %v", big, small)
	}
}

func TestFigures789(t *testing.T) {
	f7, f8, f9, err := Figures789(tiny(t, "DB2"))
	if err != nil {
		t.Fatal(err)
	}
	// Fig 7: Boomerang eliminates most BTB-miss squashes vs FDIP.
	fdipBTB := f7.Get("FDIP (BTB miss)", "DB2")
	boomBTB := f7.Get("Boomerang (BTB miss)", "DB2")
	if fdipBTB == 0 {
		t.Fatal("FDIP shows no BTB-miss squashes on DB2")
	}
	if boomBTB > fdipBTB*0.15 {
		t.Fatalf("Boomerang left %.1f%% of BTB-miss squashes", 100*boomBTB/fdipBTB)
	}
	// Fig 8: coverage in range.
	for _, s := range []string{"FDIP", "Boomerang", "Confluence"} {
		c := f8.Get(s, "DB2")
		if c < 0.1 || c > 1 {
			t.Fatalf("%s coverage %v implausible", s, c)
		}
	}
	// Fig 9: complete CF delivery beats L1-I-only prefetching.
	if f9.Get("Boomerang", "DB2") <= f9.Get("FDIP", "DB2") {
		t.Fatal("Boomerang must outperform FDIP on DB2")
	}
	if f9.Get("Boomerang", "DB2") <= 1 {
		t.Fatal("Boomerang speedup must exceed 1")
	}
}

func TestFig10(t *testing.T) {
	tab, err := Fig10(tiny(t, "DB2"), []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	none := tab.Get("DB2", "None")
	two := tab.Get("DB2", "2 Blocks")
	if two <= none {
		t.Fatalf("DB2 should gain from next-2 prefetch: %v <= %v (paper: +12%%)", two, none)
	}
}

func TestFig11(t *testing.T) {
	tab, err := Fig11(tiny(t, "Apache"), 18)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tab.Cols {
		if v := tab.Get("Apache", c); v < 0.9 || v > 2.5 {
			t.Fatalf("%s speedup %v implausible at low latency", c, v)
		}
	}
}

func TestStorageTable(t *testing.T) {
	tab := StorageTable()
	boom := tab.Get("Boomerang", "KB")
	if boom > 1 {
		t.Fatalf("Boomerang storage %v KB, want < 1", boom)
	}
	if tab.Get("PIF", "KB") < 100*boom {
		t.Fatal("PIF must dwarf Boomerang's storage")
	}
}

func TestQuickAndFullParams(t *testing.T) {
	q, f := Quick(), Full()
	if len(q.Workloads) == 0 || len(f.Workloads) != 6 {
		t.Fatal("parameter presets malformed")
	}
	if q.MeasureInstrs >= f.MeasureInstrs {
		t.Fatal("Quick must be smaller than Full")
	}
	if q.FootprintKB == 0 {
		t.Fatal("Quick must shrink footprints")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t,1", []string{`r"x`, "r2"}, []string{"c1"})
	tb.Set("r2", "c1", 1.5)
	csv := tb.CSV()
	if !strings.Contains(csv, `"t,1",c1`) {
		t.Fatalf("header not escaped: %q", csv)
	}
	if !strings.Contains(csv, `"r""x",0`) {
		t.Fatalf("quote not escaped: %q", csv)
	}
	if !strings.Contains(csv, "r2,1.5") {
		t.Fatalf("value row wrong: %q", csv)
	}
}
