package experiments

import "testing"

func TestCMPTable(t *testing.T) {
	p := tiny(t, "Zeus")
	p.WarmInstrs = 30_000
	p.MeasureInstrs = 100_000
	tab, err := CMPTable(p, 4, []string{"Base", "Boomerang"})
	if err != nil {
		t.Fatal(err)
	}
	base := tab.Get("Zeus", "Base")
	boom := tab.Get("Zeus", "Boomerang")
	if base <= 0 || boom <= base {
		t.Fatalf("CMP throughput base=%v boomerang=%v", base, boom)
	}
	// 4 cores must beat one core's IPC ceiling floor.
	if boom < 1 {
		t.Fatalf("4-core Boomerang throughput %v implausibly low", boom)
	}
}

func TestCMPTableUnknownScheme(t *testing.T) {
	p := tiny(t, "Zeus")
	if _, err := CMPTable(p, 2, []string{"NoSuch"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestTrafficTable(t *testing.T) {
	tab, err := TrafficTable(tiny(t, "Apache"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Get("Base", "prefetch/KI") != 0 {
		t.Fatal("Base must not prefetch")
	}
	if tab.Get("FDIP", "prefetch/KI") <= 0 {
		t.Fatal("FDIP must prefetch")
	}
	if tab.Get("Boomerang", "LLC acc/KI") <= 0 {
		t.Fatal("traffic accounting missing")
	}
}

func TestBTBAlternativesTable(t *testing.T) {
	p := tiny(t, "DB2")
	fig, squashes, err := BTBAlternativesTable(p)
	if err != nil {
		t.Fatal(err)
	}
	fdipSq := squashes.Get("DB2", "FDIP")
	twoSq := squashes.Get("DB2", "2-Level BTB")
	boomSq := squashes.Get("DB2", "Boomerang")
	if fdipSq == 0 {
		t.Fatal("FDIP must suffer BTB-miss squashes on DB2")
	}
	if twoSq >= fdipSq {
		t.Fatalf("2-level BTB squashes %v should be below FDIP %v", twoSq, fdipSq)
	}
	if boomSq != 0 {
		t.Fatalf("Boomerang squashes %v, want 0", boomSq)
	}
	if fig.Get("DB2", "Boomerang") <= 1 {
		t.Fatal("Boomerang speedup must exceed 1")
	}
}

func TestMotivationTable(t *testing.T) {
	p := tiny(t, "DB2")
	tab, err := MotivationTable(p)
	if err != nil {
		t.Fatal(err)
	}
	spec := tab.Get("SPEC-like", "stall frac")
	db2 := tab.Get("DB2", "stall frac")
	if spec > db2/3 {
		t.Fatalf("SPEC-like stall fraction %v should be far below DB2's %v", spec, db2)
	}
	if tab.Get("SPEC-like", "BTB sq/KI") > tab.Get("DB2", "BTB sq/KI") {
		t.Fatal("SPEC-like must have lower BTB pressure than DB2")
	}
	if tab.Get("SPEC-like", "IPC") <= tab.Get("DB2", "IPC") {
		t.Fatal("SPEC-like kernel should run faster than DB2 on the baseline")
	}
}

func TestMissPolicyTable(t *testing.T) {
	tab, err := MissPolicyTable(tiny(t, "DB2"))
	if err != nil {
		t.Fatal(err)
	}
	stall := tab.Get("DB2", "Stall, no prefetch")
	unthr := tab.Get("DB2", "Unthrottled")
	thr := tab.Get("DB2", "Throttled next-2")
	for _, v := range []float64{stall, unthr, thr} {
		if v <= 1 {
			t.Fatalf("every Boomerang variant must beat Base: %v/%v/%v", stall, unthr, thr)
		}
	}
	if thr <= stall {
		t.Fatalf("throttled next-2 (%v) should beat stalling without prefetch (%v)", thr, stall)
	}
}

func TestEnergyTable(t *testing.T) {
	tab, err := EnergyTable(tiny(t, "Apache"))
	if err != nil {
		t.Fatal(err)
	}
	base := tab.Get("Base", "total nJ/KI")
	boom := tab.Get("Boomerang", "total nJ/KI")
	pif := tab.Get("PIF", "total nJ/KI")
	if base <= 0 || boom <= 0 {
		t.Fatal("energy estimates missing")
	}
	if tab.Get("Base", "metadata nJ/KI") != 0 || tab.Get("Boomerang", "metadata nJ/KI") != 0 {
		t.Fatal("metadata-free schemes must show zero metadata energy")
	}
	if tab.Get("PIF", "metadata nJ/KI") <= 0 {
		t.Fatal("PIF must pay metadata energy")
	}
	if pif <= boom*0.5 {
		t.Fatalf("PIF energy %v implausibly below Boomerang %v", pif, boom)
	}
}
