package experiments

import (
	"fmt"

	"boomsim/internal/core"
	"boomsim/internal/scheme"
	"boomsim/internal/sim"
)

// The ablation studies quantify the design decisions DESIGN.md calls out
// beyond the paper's own sensitivity analyses: the value of the BTB prefetch
// buffer, the FTQ decoupling depth that FDIP/Boomerang rely on, and the
// predecoder's sequential scan bound.

// AblationBTBPrefetchBuffer sweeps Boomerang's FIFO BTB prefetch buffer
// (0 = discard non-terminating predecoded branches). The paper fixes it at
// 32 entries; this shows what those 336 bytes buy.
func AblationBTBPrefetchBuffer(p Params, sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{0, 8, 32, 128}
	}
	schemes := []labeledScheme{{"Base", simScheme{Scheme: scheme.Base()}}}
	cols := make([]string, 0, len(sizes))
	for _, n := range sizes {
		label := fmt.Sprintf("pbuf=%d", n)
		cols = append(cols, label)
		cfg := core.DefaultConfig()
		cfg.PrefetchBufferEntries = n
		schemes = append(schemes, labeledScheme{label, simScheme{Scheme: scheme.BoomerangCustom(label, cfg)}})
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	t := NewTable("Ablation: Boomerang BTB prefetch buffer size (speedup over Base)",
		names(p.workloads()), cols)
	t.Note = "The 32-entry buffer (336B) shortcuts misses whose entries were already predecoded."
	for _, w := range p.workloads() {
		base := res[runKey{"Base", w.Name}]
		for _, c := range cols {
			t.Set(w.Name, c, sim.Speedup(base, res[runKey{c, w.Name}]))
		}
	}
	t.AddAvgRow()
	return t, nil
}

// AblationFTQDepth sweeps the FTQ depth driving FDIP's prefetch engine: the
// decoupling that lets prefetch run ahead of fetch. The paper uses 32.
func AblationFTQDepth(p Params, depths []int) (*Table, error) {
	if len(depths) == 0 {
		depths = []int{4, 8, 16, 32, 64}
	}
	schemes := []labeledScheme{{"Base", simScheme{Scheme: scheme.Base()}}}
	cols := make([]string, 0, len(depths))
	for _, d := range depths {
		label := fmt.Sprintf("FTQ=%d", d)
		cols = append(cols, label)
		schemes = append(schemes, labeledScheme{label, simScheme{Scheme: scheme.FDIPDepth(d)}})
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	t := NewTable("Ablation: FDIP FTQ depth (stall-cycle coverage over Base)",
		names(p.workloads()), cols)
	t.Note = "Coverage needs enough decoupling to hide the LLC round trip; it saturates near the paper's 32 entries."
	for _, w := range p.workloads() {
		base := res[runKey{"Base", w.Name}]
		for _, c := range cols {
			t.Set(w.Name, c, sim.Coverage(base, res[runKey{c, w.Name}]))
		}
	}
	t.AddAvgRow()
	return t, nil
}

// MissPolicyTable compares Section IV-C1's design alternatives for
// prefetching under a BTB miss: stop feeding the FTQ ("No prefetch" — stall
// until resolved), unthrottled sequential continuation, and the evaluated
// throttled next-2 policy.
func MissPolicyTable(p Params) (*Table, error) {
	noPf := core.DefaultConfig()
	noPf.ThrottleN = 0
	schemes := []labeledScheme{
		{"Base", simScheme{Scheme: scheme.Base()}},
		{"Stall, no prefetch", simScheme{Scheme: scheme.BoomerangCustom("Stall, no prefetch", noPf)}},
		{"Unthrottled", simScheme{Scheme: scheme.BoomerangUnthrottled()}},
		{"Throttled next-2", simScheme{Scheme: scheme.Boomerang()}},
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	cols := []string{"Stall, no prefetch", "Unthrottled", "Throttled next-2"}
	t := NewTable("Section IV-C1: prefetching under a BTB miss (speedup over Base)",
		names(p.workloads()), cols)
	t.Note = "Paper: throttled next-2 balances lost opportunity (stall) against wrong-path over-prefetch (unthrottled)."
	for _, w := range p.workloads() {
		base := res[runKey{"Base", w.Name}]
		for _, c := range cols {
			t.Set(w.Name, c, sim.Speedup(base, res[runKey{c, w.Name}]))
		}
	}
	t.AddAvgRow()
	return t, nil
}

// AblationPredecodeScan sweeps Boomerang's bound on sequential lines scanned
// while resolving a BTB miss (the terminator may lie beyond the first line).
func AblationPredecodeScan(p Params, bounds []int) (*Table, error) {
	if len(bounds) == 0 {
		bounds = []int{1, 2, 4, 8}
	}
	schemes := []labeledScheme{{"Base", simScheme{Scheme: scheme.Base()}}}
	cols := make([]string, 0, len(bounds))
	for _, m := range bounds {
		label := fmt.Sprintf("scan=%d", m)
		cols = append(cols, label)
		cfg := core.DefaultConfig()
		cfg.MaxScanLines = m
		schemes = append(schemes, labeledScheme{label, simScheme{Scheme: scheme.BoomerangCustom(label, cfg)}})
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	t := NewTable("Ablation: Boomerang predecode scan bound (speedup over Base)",
		names(p.workloads()), cols)
	t.Note = "A 1-line bound leaves long basic blocks unresolvable; a few lines suffice."
	for _, w := range p.workloads() {
		base := res[runKey{"Base", w.Name}]
		for _, c := range cols {
			t.Set(w.Name, c, sim.Speedup(base, res[runKey{c, w.Name}]))
		}
	}
	t.AddAvgRow()
	return t, nil
}
