package experiments

import (
	"context"
	"fmt"

	"boomsim/internal/frontend"
	"boomsim/internal/isa"
	"boomsim/internal/scheme"
	"boomsim/internal/sim"
	"boomsim/internal/workload"
)

// Fig1 reproduces Figure 1, the opportunity study: speedup from a perfect
// L1-I, and from a perfect L1-I plus a perfect BTB, over the no-prefetch
// baseline with a 2K-entry BTB. Paper: 11-47% from the L1-I, a further
// 6-40% from the BTB.
func Fig1(p Params) (*Table, error) {
	schemes := []labeledScheme{
		{"Base", simScheme{Scheme: scheme.Base()}},
		{"Perfect L1-I", simScheme{Scheme: scheme.PerfectL1I()}},
		{"Perfect L1-I + BTB", simScheme{Scheme: scheme.PerfectCF()}},
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	t := NewTable("Figure 1: opportunity in control flow delivery (speedup over Base)",
		names(p.workloads()), []string{"Perfect L1-I", "Perfect L1-I + BTB"})
	t.Note = "Paper: perfect L1-I gives 1.11-1.47x; perfect BTB adds another 6-40%."
	for _, w := range p.workloads() {
		base := res[runKey{"Base", w.Name}]
		t.Set(w.Name, "Perfect L1-I", sim.Speedup(base, res[runKey{"Perfect L1-I", w.Name}]))
		t.Set(w.Name, "Perfect L1-I + BTB", sim.Speedup(base, res[runKey{"Perfect L1-I + BTB", w.Name}]))
	}
	t.AddAvgRow()
	return t, nil
}

// Fig2LLCLatencies is the sweep of Figures 2 and 5.
var Fig2LLCLatencies = []int{1, 10, 20, 30, 40, 50, 60, 70}

// Fig2 reproduces Figure 2: front-end stall cycles covered by FDIP under
// different direction predictors (TAGE / bimodal / never-taken) and by PIF,
// across LLC latencies, with a near-ideal 32K-entry BTB. Paper: FDIP+TAGE
// tracks PIF; even never-taken retains much of the coverage.
func Fig2(p Params, latencies []int) (*Table, error) {
	if len(latencies) == 0 {
		latencies = Fig2LLCLatencies
	}
	var schemes []labeledScheme
	rows := make([]string, 0, len(latencies))
	for _, lat := range latencies {
		rows = append(rows, fmt.Sprintf("LLC=%d", lat))
		schemes = append(schemes,
			labeledScheme{fmt.Sprintf("base-%d", lat), simScheme{Scheme: scheme.Base(), BTB: 32768, LLC: lat}},
			labeledScheme{fmt.Sprintf("pif-%d", lat), simScheme{Scheme: scheme.PIF(), BTB: 32768, LLC: lat}},
			labeledScheme{fmt.Sprintf("tage-%d", lat), simScheme{Scheme: scheme.FDIP(), BTB: 32768, LLC: lat}},
			labeledScheme{fmt.Sprintf("2bit-%d", lat), simScheme{Scheme: scheme.FDIP(), BTB: 32768, LLC: lat, Predictor: "bimodal"}},
			labeledScheme{fmt.Sprintf("nt-%d", lat), simScheme{Scheme: scheme.FDIP(), BTB: 32768, LLC: lat, Predictor: "never-taken"}},
		)
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	cols := []string{"PIF", "FDIP TAGE", "FDIP 2-bit", "FDIP Never-Taken"}
	t := NewTable("Figure 2: stall cycles covered vs LLC latency (32K BTB, workload average)", rows, cols)
	t.Note = "Paper: FDIP+TAGE ~= PIF at all latencies; never-taken keeps most coverage.\n" +
		"(At LLC latency <= the pipelined L1-I hit time there are no stall cycles to cover.)"
	for i, lat := range latencies {
		row := rows[i]
		t.Set(row, "PIF", avgCoverage(p, res, fmt.Sprintf("base-%d", lat), fmt.Sprintf("pif-%d", lat)))
		t.Set(row, "FDIP TAGE", avgCoverage(p, res, fmt.Sprintf("base-%d", lat), fmt.Sprintf("tage-%d", lat)))
		t.Set(row, "FDIP 2-bit", avgCoverage(p, res, fmt.Sprintf("base-%d", lat), fmt.Sprintf("2bit-%d", lat)))
		t.Set(row, "FDIP Never-Taken", avgCoverage(p, res, fmt.Sprintf("base-%d", lat), fmt.Sprintf("nt-%d", lat)))
	}
	return t, nil
}

// Fig3 reproduces Figure 3: the source of correct-path miss (stall) cycles —
// sequential vs conditional vs unconditional — for the Base, Next-Line,
// FDIP (BTB 2K..32K) and PIF configurations, normalised to Base's total.
// Paper: sequential dominates (40-54%); the 2K->32K BTB gap is mostly
// unconditional discontinuities.
func Fig3(p Params) (*Table, error) {
	schemes := []labeledScheme{
		{"Base 2KBTB", simScheme{Scheme: scheme.Base()}},
		{"Next-Line 2KBTB", simScheme{Scheme: scheme.NextLine()}},
		{"FDIP 2KBTB", simScheme{Scheme: scheme.FDIP(), BTB: 2048}},
		{"FDIP 4KBTB", simScheme{Scheme: scheme.FDIP(), BTB: 4096}},
		{"FDIP 8KBTB", simScheme{Scheme: scheme.FDIP(), BTB: 8192}},
		{"FDIP 16KBTB", simScheme{Scheme: scheme.FDIP(), BTB: 16384}},
		{"FDIP 32KBTB", simScheme{Scheme: scheme.FDIP(), BTB: 32768}},
		{"PIF 32KBTB", simScheme{Scheme: scheme.PIF(), BTB: 32768}},
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(schemes))
	for _, s := range schemes {
		rows = append(rows, s.label)
	}
	cols := []string{"Sequential%", "Conditional%", "Unconditional%", "Total%"}
	t := NewTable("Figure 3: miss-cycle breakdown, % of Base stall cycles (workload average)", rows, cols)
	t.Note = "Paper: sequential misses are 40-54% of Base; large BTBs mostly recover unconditional misses."
	t.Format = "%.1f"
	ws := p.workloads()
	for _, s := range schemes {
		var seq, cond, unc float64
		for _, w := range ws {
			base := res[runKey{"Base 2KBTB", w.Name}]
			r := res[runKey{s.label, w.Name}]
			baseTotal := perInstr(base, base.Stats.FetchStallCycles)
			if baseTotal == 0 {
				continue
			}
			seq += perInstr(r, r.Stats.StallByClass[isa.Sequential]) / baseTotal
			cond += perInstr(r, r.Stats.StallByClass[isa.Conditional]) / baseTotal
			unc += perInstr(r, r.Stats.StallByClass[isa.Unconditional]) / baseTotal
		}
		n := float64(len(ws))
		t.Set(s.label, "Sequential%", 100*seq/n)
		t.Set(s.label, "Conditional%", 100*cond/n)
		t.Set(s.label, "Unconditional%", 100*unc/n)
		t.Set(s.label, "Total%", 100*(seq+cond+unc)/n)
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the cumulative distribution of taken
// conditional branch distance in cache blocks. Paper: ~92% within 4 blocks.
func Fig4(p Params, steps uint64) (*Table, error) {
	if steps == 0 {
		steps = 400_000
	}
	ws := p.workloads()
	cols := []string{"0", "1", "2", "3", "4", "5", "6", "7", "8+"}
	t := NewTable("Figure 4: taken conditional branch distance CDF (cache blocks)",
		names(ws), cols)
	t.Note = "Paper: ~92% of taken conditionals land within 4 blocks of the branch."
	t.Format = "%.2f"
	cdfs := make([][]float64, len(ws))
	errs := make([]error, len(ws))
	ForEach(context.Background(), p.parallelism(), len(ws), func(i int) {
		img, err := ws[i].Image(p.ImageSeed)
		if err != nil {
			errs[i] = err
			return
		}
		walker := workload.NewWalker(img, p.WalkSeed)
		st := workload.Measure(walker, steps, len(cols))
		cdfs[i] = workload.CDF(st.TakenCondDist)
	})
	for i, w := range ws {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for j, c := range cols {
			t.Set(w.Name, c, cdfs[i][j])
		}
	}
	t.AddAvgRow()
	return t, nil
}

// Fig5BTBSizes is the BTB sweep of Figure 5.
var Fig5BTBSizes = []int{2048, 4096, 8192, 16384, 32768}

// Fig5 reproduces Figure 5: FDIP's stall-cycle coverage as a function of
// BTB size and LLC latency. Paper: 32K->2K BTB costs ~12% coverage.
func Fig5(p Params, latencies []int, btbs []int) (*Table, error) {
	if len(latencies) == 0 {
		latencies = Fig2LLCLatencies
	}
	if len(btbs) == 0 {
		btbs = Fig5BTBSizes
	}
	var schemes []labeledScheme
	rows := make([]string, 0, len(latencies))
	for _, lat := range latencies {
		rows = append(rows, fmt.Sprintf("LLC=%d", lat))
		schemes = append(schemes,
			labeledScheme{fmt.Sprintf("base-%d", lat), simScheme{Scheme: scheme.Base(), LLC: lat}})
		for _, b := range btbs {
			schemes = append(schemes, labeledScheme{
				fmt.Sprintf("fdip-%d-%d", b, lat),
				simScheme{Scheme: scheme.FDIP(), BTB: b, LLC: lat},
			})
		}
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(btbs))
	for _, b := range btbs {
		cols = append(cols, fmt.Sprintf("BTB%dK", b/1024))
	}
	t := NewTable("Figure 5: FDIP stall-cycle coverage vs BTB size and LLC latency (workload average)", rows, cols)
	t.Note = "Paper: dropping 32K->2K BTB loses ~12% coverage, mostly unconditional discontinuities."
	for i, lat := range latencies {
		for j, b := range btbs {
			t.Set(rows[i], cols[j],
				avgCoverage(p, res, fmt.Sprintf("base-%d", lat), fmt.Sprintf("fdip-%d-%d", b, lat)))
		}
	}
	return t, nil
}

// evalSchemes is the six-scheme lineup of Figures 7, 8 and 9.
func evalSchemes() []labeledScheme {
	return []labeledScheme{
		{"Next Line", simScheme{Scheme: scheme.NextLine()}},
		{"DIP", simScheme{Scheme: scheme.DIP()}},
		{"FDIP", simScheme{Scheme: scheme.FDIP()}},
		{"SHIFT", simScheme{Scheme: scheme.SHIFT()}},
		{"Confluence", simScheme{Scheme: scheme.Confluence()}},
		{"Boomerang", simScheme{Scheme: scheme.Boomerang()}},
	}
}

// Figures789 runs the main evaluation matrix once and derives the squash
// (Fig 7), coverage (Fig 8) and speedup (Fig 9) tables from it.
func Figures789(p Params) (fig7, fig8, fig9 *Table, err error) {
	schemes := append([]labeledScheme{{"Base", simScheme{Scheme: scheme.Base()}}}, evalSchemes()...)
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, nil, nil, err
	}
	ws := p.workloads()

	labels := make([]string, 0, len(evalSchemes()))
	for _, s := range evalSchemes() {
		labels = append(labels, s.label)
	}

	// Figure 7: squashes per kilo-instruction, split by cause.
	var rows7 []string
	for _, l := range labels {
		rows7 = append(rows7, l+" (mispred)", l+" (BTB miss)")
	}
	fig7 = NewTable("Figure 7: pipeline squashes per kilo-instruction (workload average)",
		rows7, append(names(ws), "Avg"))
	fig7.Note = "Paper: Boomerang and Confluence eliminate >85% of BTB-miss squashes; Boomerang detects every miss."
	fig7.Format = "%.2f"
	for _, l := range labels {
		for _, w := range ws {
			r := res[runKey{l, w.Name}]
			fig7.Set(l+" (mispred)", w.Name, r.Stats.MispredictSquashesPerKI())
			fig7.Set(l+" (BTB miss)", w.Name, r.Stats.SquashesPerKI(frontend.SquashBTBMiss))
		}
		fig7.Set(l+" (mispred)", "Avg", rowAvg(fig7, l+" (mispred)", ws))
		fig7.Set(l+" (BTB miss)", "Avg", rowAvg(fig7, l+" (BTB miss)", ws))
	}

	// Figure 8: front-end stall cycles covered over the Base.
	fig8 = NewTable("Figure 8: front-end stall cycle coverage over Base",
		labels, append(names(ws), "Avg"))
	fig8.Note = "Paper: Boomerang 61% ~= Confluence 60% on average; Confluence wins on Oracle/DB2."
	for _, l := range labels {
		for _, w := range ws {
			base := res[runKey{"Base", w.Name}]
			fig8.Set(l, w.Name, sim.Coverage(base, res[runKey{l, w.Name}]))
		}
		fig8.Set(l, "Avg", rowAvg(fig8, l, ws))
	}

	// Figure 9: speedup over Base.
	fig9 = NewTable("Figure 9: speedup over the no-prefetch baseline",
		labels, append(names(ws), "Avg"))
	fig9.Note = "Paper: Boomerang 1.28x average, ~1% over Confluence, ~11% over L1-I-only prefetchers."
	for _, l := range labels {
		for _, w := range ws {
			base := res[runKey{"Base", w.Name}]
			fig9.Set(l, w.Name, sim.Speedup(base, res[runKey{l, w.Name}]))
		}
		fig9.Set(l, "Avg", rowAvg(fig9, l, ws))
	}
	return fig7, fig8, fig9, nil
}

// Fig10Throttles is the next-N sweep of Figure 10.
var Fig10Throttles = []int{0, 1, 2, 4, 8}

// Fig10 reproduces Figure 10: Boomerang's sensitivity to the next-N-block
// prefetch under BTB misses. Paper: next-2 is best on average; Streaming
// prefers none; DB2 gains ~12% from next-2 over none.
func Fig10(p Params, throttles []int) (*Table, error) {
	if len(throttles) == 0 {
		throttles = Fig10Throttles
	}
	schemes := []labeledScheme{{"Base", simScheme{Scheme: scheme.Base()}}}
	cols := make([]string, 0, len(throttles))
	for _, n := range throttles {
		label := fmt.Sprintf("%d Blocks", n)
		if n == 0 {
			label = "None"
		}
		cols = append(cols, label)
		schemes = append(schemes, labeledScheme{label, simScheme{Scheme: scheme.BoomerangThrottled(n)}})
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	t := NewTable("Figure 10: Boomerang next-N-block prefetch on BTB misses (speedup over Base)",
		names(p.workloads()), cols)
	t.Note = "Paper: next-2-blocks is the best average policy; Streaming prefers none."
	for _, w := range p.workloads() {
		base := res[runKey{"Base", w.Name}]
		for _, c := range cols {
			t.Set(w.Name, c, sim.Speedup(base, res[runKey{c, w.Name}]))
		}
	}
	t.AddAvgRow()
	return t, nil
}

// Fig11 reproduces Figure 11: the main schemes at the crossbar's 18-cycle
// LLC round trip. Paper: same ordering as the mesh, smaller absolute gains;
// Boomerang keeps its slight edge over Confluence.
func Fig11(p Params, llcLatency int) (*Table, error) {
	if llcLatency <= 0 {
		llcLatency = 18
	}
	lineup := []labeledScheme{
		{"Base", simScheme{Scheme: scheme.Base(), LLC: llcLatency}},
		{"Next Line", simScheme{Scheme: scheme.NextLine(), LLC: llcLatency}},
		{"FDIP", simScheme{Scheme: scheme.FDIP(), LLC: llcLatency}},
		{"SHIFT", simScheme{Scheme: scheme.SHIFT(), LLC: llcLatency}},
		{"Confluence", simScheme{Scheme: scheme.Confluence(), LLC: llcLatency}},
		{"Boomerang", simScheme{Scheme: scheme.Boomerang(), LLC: llcLatency}},
	}
	res, err := runMatrix(p, lineup)
	if err != nil {
		return nil, err
	}
	cols := []string{"Next Line", "FDIP", "SHIFT", "Confluence", "Boomerang"}
	t := NewTable(fmt.Sprintf("Figure 11: speedup at %d-cycle LLC round trip (crossbar)", llcLatency),
		names(p.workloads()), cols)
	t.Note = "Paper: trends match the mesh; absolute benefits shrink with the cheaper LLC."
	for _, w := range p.workloads() {
		base := res[runKey{"Base", w.Name}]
		for _, c := range cols {
			t.Set(w.Name, c, sim.Speedup(base, res[runKey{c, w.Name}]))
		}
	}
	t.AddAvgRow()
	return t, nil
}

// StorageTable reproduces the Section VI-D storage comparison.
func StorageTable() *Table {
	rows := []string{"FDIP", "DIP", "PIF", "SHIFT", "Confluence", "Boomerang"}
	t := NewTable("Section VI-D: per-core metadata storage beyond the baseline (KB)",
		rows, []string{"KB"})
	t.Note = "Paper: Boomerang needs 540 bytes (FTQ 204B + BTB prefetch buffer 336B); Confluence needs a 240KB LLC tag extension plus LLC-resident history."
	t.Format = "%.2f"
	for _, s := range []scheme.Scheme{scheme.FDIP(), scheme.DIP(), scheme.PIF(),
		scheme.SHIFT(), scheme.Confluence(), scheme.Boomerang()} {
		t.Set(s.Name, "KB", s.StorageOverheadKB)
	}
	return t
}

// ---------------------------------------------------------------------------

func names(ws []workload.Profile) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

func avgCoverage(p Params, res map[runKey]sim.Result, baseLabel, label string) float64 {
	ws := p.workloads()
	var sum float64
	for _, w := range ws {
		sum += sim.Coverage(res[runKey{baseLabel, w.Name}], res[runKey{label, w.Name}])
	}
	return sum / float64(len(ws))
}

func rowAvg(t *Table, row string, ws []workload.Profile) float64 {
	var sum float64
	for _, w := range ws {
		sum += t.Get(row, w.Name)
	}
	return sum / float64(len(ws))
}

func perInstr(r sim.Result, v uint64) float64 {
	if r.Stats.RetiredInstrs == 0 {
		return 0
	}
	return float64(v) / float64(r.Stats.RetiredInstrs)
}
