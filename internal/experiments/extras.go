package experiments

import (
	"context"
	"fmt"

	"boomsim/internal/energy"
	"boomsim/internal/frontend"
	"boomsim/internal/scheme"
	"boomsim/internal/sim"
	"boomsim/internal/workload"
)

// CMPTable runs the paper's chip-level configuration — 16 cores executing
// the same workload from independent request streams — and reports aggregate
// throughput (the paper's application-instructions per total-cycles metric)
// for the main schemes. Cores are microarchitecturally independent; sharing
// appears through the common LLC capacity and the warmed shared text.
func CMPTable(p Params, cores int, schemesUnderTest []string) (*Table, error) {
	if cores <= 0 {
		cores = 16
	}
	if len(schemesUnderTest) == 0 {
		schemesUnderTest = []string{"Base", "FDIP", "Confluence", "Boomerang"}
	}
	ws := p.workloads()
	t := NewTable(fmt.Sprintf("CMP: %d-core aggregate throughput (instructions/cycle)", cores),
		names(ws), schemesUnderTest)
	t.Note = "The paper's Table I context: a 16-core tiled CMP running one server workload."
	type point struct {
		workload string
		scheme   string
		spec     sim.Spec
	}
	points := make([]point, 0, len(ws)*len(schemesUnderTest))
	for _, w := range ws {
		for _, name := range schemesUnderTest {
			s, ok := scheme.ByName(name)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown scheme %q", name)
			}
			points = append(points, point{w.Name, name, p.spec(simScheme{Scheme: s}, w)})
		}
	}
	// Each point already fans its cores out internally, so run the grid on a
	// pool divided by the core count to keep total concurrency bounded.
	workers := (p.parallelism() + cores - 1) / cores
	results := make([]sim.CMPResult, len(points))
	errs := make([]error, len(points))
	ForEach(context.Background(), workers, len(points), func(i int) {
		results[i], errs[i] = sim.RunCMP(sim.CMPSpec{Spec: points[i].spec, Cores: cores})
	})
	for i, pt := range points {
		if errs[i] != nil {
			return nil, errs[i]
		}
		t.Set(pt.workload, pt.scheme, results[i].Throughput)
	}
	t.AddAvgRow()
	return t, nil
}

// BTBAlternativesTable compares Boomerang against the hierarchical-BTB
// designs the paper's Section II-C positions it against: a two-level BTB
// with bulk spatial preload (z-series style) and an LLC-virtualised
// temporal-group BTB (PhantomBTB). Both remove most BTB-miss squashes but
// expose the second level's access latency on every first-level miss and
// carry >100KB of metadata; Boomerang does it with 540 bytes.
func BTBAlternativesTable(p Params) (fig *Table, squashes *Table, err error) {
	schemes := []labeledScheme{
		{"Base", simScheme{Scheme: scheme.Base()}},
		{"FDIP", simScheme{Scheme: scheme.FDIP()}},
		{"2-Level BTB", simScheme{Scheme: scheme.TwoLevelBTB()}},
		{"PhantomBTB", simScheme{Scheme: scheme.PhantomBTBScheme()}},
		{"Boomerang", simScheme{Scheme: scheme.Boomerang()}},
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, nil, err
	}
	cols := []string{"FDIP", "2-Level BTB", "PhantomBTB", "Boomerang"}
	fig = NewTable("BTB alternatives: speedup over Base", names(p.workloads()), cols)
	fig.Note = "Section II-C: hierarchical BTBs fix BTB misses but pay the L2/LLC latency and 100KB+ of storage."
	squashes = NewTable("BTB alternatives: BTB-miss squashes per kilo-instruction",
		names(p.workloads()), cols)
	squashes.Format = "%.2f"
	for _, w := range p.workloads() {
		base := res[runKey{"Base", w.Name}]
		for _, c := range cols {
			r := res[runKey{c, w.Name}]
			fig.Set(w.Name, c, sim.Speedup(base, r))
			squashes.Set(w.Name, c, r.Stats.SquashesPerKI(frontend.SquashBTBMiss))
		}
	}
	fig.AddAvgRow()
	squashes.AddAvgRow()
	return fig, squashes, nil
}

// MotivationTable reproduces the Section II-B contrast: on a SPEC-like
// compute kernel the front end is a non-problem (tiny footprint, near-zero
// stall fraction, negligible BTB misses), while the server workloads drown —
// which is why FDIP was historically dismissed for servers and why the
// paper's re-examination was needed.
func MotivationTable(p Params) (*Table, error) {
	ws := append([]workload.Profile{workload.SPECLike()}, p.workloads()...)
	pp := p
	pp.Workloads = ws
	pp.FootprintKB = 0 // the contrast needs real footprints
	res, err := runMatrix(pp, []labeledScheme{{"Base", simScheme{Scheme: scheme.Base()}}})
	if err != nil {
		return nil, err
	}
	cols := []string{"stall frac", "L1I MPKI", "BTB sq/KI", "IPC"}
	t := NewTable("Section II: front-end pressure, SPEC-like kernel vs server workloads (Base)",
		names(ws), cols)
	t.Note = "FDIP was proposed on SPEC-class codes; server stacks are a different regime."
	for _, w := range ws {
		r := res[runKey{"Base", w.Name}]
		t.Set(w.Name, "stall frac", r.Stats.StallFraction())
		t.Set(w.Name, "L1I MPKI", float64(r.Stats.DemandLineMisses)*1000/float64(r.Stats.RetiredInstrs))
		t.Set(w.Name, "BTB sq/KI", r.Stats.SquashesPerKI(frontend.SquashBTBMiss))
		t.Set(w.Name, "IPC", r.IPC)
	}
	return t, nil
}

// EnergyTable prices each scheme's front-end activity with the event-based
// energy proxy (package energy), normalised per kilo-instruction. The paper
// argues (Section VI-D) that prefetcher energy is a small fraction of core
// power but that Boomerang additionally avoids dedicated storage and
// metadata movement — visible here as the metadata column.
func EnergyTable(p Params) (*Table, error) {
	schemes := []labeledScheme{
		{"Base", simScheme{Scheme: scheme.Base()}},
		{"FDIP", simScheme{Scheme: scheme.FDIP()}},
		{"PIF", simScheme{Scheme: scheme.PIF()}},
		{"Confluence", simScheme{Scheme: scheme.Confluence()}},
		{"Boomerang", simScheme{Scheme: scheme.Boomerang()}},
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	model := energy.Default()
	rows := make([]string, 0, len(schemes))
	for _, s := range schemes {
		rows = append(rows, s.label)
	}
	cols := []string{"total nJ/KI", "mem-side nJ/KI", "metadata nJ/KI"}
	t := NewTable("Energy proxy per kilo-instruction (workload average)", rows, cols)
	t.Note = "Event-priced estimate; relative comparison only. Metadata = temporal history movement."
	t.Format = "%.2f"
	ws := p.workloads()
	for _, s := range schemes {
		var total, memSide, meta float64
		for _, w := range ws {
			r := res[runKey{s.label, w.Name}]
			ev := energy.FromStats(r.Stats, r.Hier, r.PredecodedLines, r.PrefetchMetaBytes)
			b := model.Estimate(ev)
			ki := float64(r.Stats.RetiredInstrs) / 1000
			total += b.Total() / ki
			memSide += (b.LLC + b.Mem) / ki
			meta += b.Metadata / ki
		}
		n := float64(len(ws))
		t.Set(s.label, "total nJ/KI", total/n)
		t.Set(s.label, "mem-side nJ/KI", memSide/n)
		t.Set(s.label, "metadata nJ/KI", meta/n)
	}
	return t, nil
}

// TrafficTable quantifies the memory-system activity behind the paper's
// Section VI-D energy argument: prefetch requests issued, LLC accesses, and
// useless prefetches (evicted unused) per kilo-instruction. Boomerang's
// traffic is demand-shaped; the temporal streamers add metadata and replay
// traffic.
func TrafficTable(p Params) (*Table, error) {
	schemes := []labeledScheme{
		{"Base", simScheme{Scheme: scheme.Base()}},
		{"FDIP", simScheme{Scheme: scheme.FDIP()}},
		{"PIF", simScheme{Scheme: scheme.PIF()}},
		{"Confluence", simScheme{Scheme: scheme.Confluence()}},
		{"Boomerang", simScheme{Scheme: scheme.Boomerang()}},
	}
	res, err := runMatrix(p, schemes)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(schemes))
	for _, s := range schemes {
		rows = append(rows, s.label)
	}
	cols := []string{"prefetch/KI", "LLC acc/KI", "useless/KI"}
	t := NewTable("Traffic per kilo-instruction (workload average)", rows, cols)
	t.Note = "Useless = prefetched lines evicted from the prefetch buffer without a demand hit."
	t.Format = "%.2f"
	ws := p.workloads()
	for _, s := range schemes {
		var pf, llc, useless float64
		for _, w := range ws {
			r := res[runKey{s.label, w.Name}]
			ki := float64(r.Stats.RetiredInstrs) / 1000
			pf += float64(r.Hier.Prefetches) / ki
			llc += float64(r.Hier.LLCAccesses) / ki
			useless += float64(r.Hier.UselessPrefetch) / ki
		}
		n := float64(len(ws))
		t.Set(s.label, "prefetch/KI", pf/n)
		t.Set(s.label, "LLC acc/KI", llc/n)
		t.Set(s.label, "useless/KI", useless/n)
	}
	return t, nil
}
