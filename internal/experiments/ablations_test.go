package experiments

import "testing"

func TestAblationBTBPrefetchBuffer(t *testing.T) {
	tab, err := AblationBTBPrefetchBuffer(tiny(t, "DB2"), []int{0, 32})
	if err != nil {
		t.Fatal(err)
	}
	none := tab.Get("DB2", "pbuf=0")
	full := tab.Get("DB2", "pbuf=32")
	if none <= 1 || full <= 1 {
		t.Fatalf("Boomerang variants must still beat Base: %v / %v", none, full)
	}
	if full < none*0.98 {
		t.Fatalf("the prefetch buffer should not hurt: %v vs %v", full, none)
	}
}

func TestAblationFTQDepth(t *testing.T) {
	tab, err := AblationFTQDepth(tiny(t, "Apache"), []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	shallow := tab.Get("Apache", "FTQ=4")
	deep := tab.Get("Apache", "FTQ=32")
	if deep <= shallow {
		t.Fatalf("deep FTQ coverage %v should beat shallow %v", deep, shallow)
	}
}

func TestAblationPredecodeScan(t *testing.T) {
	tab, err := AblationPredecodeScan(tiny(t, "DB2"), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"scan=1", "scan=8"} {
		if v := tab.Get("DB2", c); v < 0.9 || v > 2.5 {
			t.Fatalf("%s speedup %v implausible", c, v)
		}
	}
}
