// Package experiments defines one runnable experiment per table/figure of
// the paper's evaluation (Section VI) plus the motivation studies (Section
// II-III). Each experiment returns formatted tables whose rows/series match
// what the paper plots; cmd/experiments regenerates them all and
// EXPERIMENTS.md records paper-vs-measured.
//
// Every figure's independent (scheme, workload) simulation points run on a
// bounded worker pool (see runner.go). The runner assembles results into
// pre-assigned, deterministically ordered slots, so the emitted tables are
// byte-identical regardless of Params.Parallelism — running with one worker
// reproduces the parallel output exactly, and vice versa.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"boomsim/internal/config"
	"boomsim/internal/scheme"
	"boomsim/internal/sim"
	"boomsim/internal/viz"
	"boomsim/internal/workload"
)

// Params scales the experiments: Full is paper-shaped, Quick is sized for
// CI and tests.
type Params struct {
	// Workloads to evaluate (default: all six of Table II).
	Workloads []workload.Profile
	// Cfg is the base core configuration.
	Cfg config.Core
	// FootprintKB overrides every workload's code footprint when > 0
	// (Quick mode shrinks the images).
	FootprintKB int
	// WarmInstrs/MeasureInstrs set the per-run windows.
	WarmInstrs, MeasureInstrs uint64
	// ImageSeed/WalkSeed control randomness.
	ImageSeed, WalkSeed uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS, 1 =
	// sequential). Results are identical for every value; see the package
	// comment's determinism guarantee.
	Parallelism int
}

// Full returns paper-scale parameters: full workload footprints, 300K warm
// + 1.5M measured instructions per configuration point.
func Full() Params {
	return Params{
		Workloads:     workload.Profiles,
		Cfg:           config.Default(),
		WarmInstrs:    300_000,
		MeasureInstrs: 1_500_000,
		ImageSeed:     1,
		WalkSeed:      1,
	}
}

// Quick returns CI-sized parameters: three workloads at reduced footprint,
// short windows. Shapes survive; absolute numbers wobble.
func Quick() Params {
	apache, _ := workload.ByName("Apache")
	db2, _ := workload.ByName("DB2")
	streaming, _ := workload.ByName("Streaming")
	return Params{
		Workloads:     []workload.Profile{apache, db2, streaming},
		Cfg:           config.Default(),
		FootprintKB:   384,
		WarmInstrs:    100_000,
		MeasureInstrs: 400_000,
		ImageSeed:     1,
		WalkSeed:      1,
	}
}

// WithWorkloads returns a copy of p restricted to the named Table II
// profiles, so callers can narrow an experiment without importing the
// workload package themselves.
func (p Params) WithWorkloads(names ...string) (Params, error) {
	ws := make([]workload.Profile, len(names))
	for i, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			return Params{}, fmt.Errorf("experiments: unknown workload %q", name)
		}
		ws[i] = w
	}
	p.Workloads = ws
	return p, nil
}

func (p Params) workloads() []workload.Profile {
	ws := p.Workloads
	if len(ws) == 0 {
		ws = workload.Profiles
	}
	if p.FootprintKB <= 0 {
		return ws
	}
	out := make([]workload.Profile, len(ws))
	for i, w := range ws {
		w.Gen.FootprintKB = p.FootprintKB
		out[i] = w
	}
	return out
}

func (p Params) spec(s simScheme, w workload.Profile) sim.Spec {
	spec := sim.DefaultSpec(s.Scheme, w)
	spec.Cfg = s.cfg(p.Cfg)
	spec.Predictor = s.Predictor
	spec.WarmInstrs = p.WarmInstrs
	spec.MeasureInstrs = p.MeasureInstrs
	spec.ImageSeed = p.ImageSeed
	spec.WalkSeed = p.WalkSeed
	return spec
}

func (p Params) parallelism() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Table is one formatted result grid: rows x columns of values, matching a
// paper figure's series.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  []string
	Cells [][]float64
	// Format is the cell printf verb (default %.3f).
	Format string
}

// NewTable allocates an empty grid.
func NewTable(title string, rows, cols []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{Title: title, Cols: cols, Rows: rows, Cells: cells}
}

// Set stores a cell by names (panics on unknown names: experiment bug).
func (t *Table) Set(row, col string, v float64) {
	t.Cells[t.rowIdx(row)][t.colIdx(col)] = v
}

// Get reads a cell by names.
func (t *Table) Get(row, col string) float64 {
	return t.Cells[t.rowIdx(row)][t.colIdx(col)]
}

func (t *Table) rowIdx(name string) int {
	for i, r := range t.Rows {
		if r == name {
			return i
		}
	}
	panic(fmt.Sprintf("experiments: unknown row %q in %q", name, t.Title))
}

func (t *Table) colIdx(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("experiments: unknown column %q in %q", name, t.Title))
}

// AddAvgRow appends a column-mean row labelled "Avg".
func (t *Table) AddAvgRow() {
	avg := make([]float64, len(t.Cols))
	for _, row := range t.Cells {
		for j, v := range row {
			avg[j] += v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(t.Cells))
	}
	t.Rows = append(t.Rows, "Avg")
	t.Cells = append(t.Cells, avg)
}

// Chart renders the table as grouped ASCII bar charts (one group per
// column), for terminal inspection without a plotting tool.
func (t *Table) Chart(width int) string {
	return viz.GroupedBars(t.Title, t.Rows, t.Cols, t.Cells, width)
}

// CSV renders the table as comma-separated values (header row + one row per
// table row), for downstream plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.Title))
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		b.WriteString(csvEscape(r))
		for _, v := range t.Cells[i] {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// String renders the table as aligned text.
func (t *Table) String() string {
	format := t.Format
	if format == "" {
		format = "%.3f"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	width := 12
	for _, c := range t.Cols {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	rowW := 14
	for _, r := range t.Rows {
		if len(r)+2 > rowW {
			rowW = len(r) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", rowW, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", rowW, r)
		for _, v := range t.Cells[i] {
			fmt.Fprintf(&b, "%*s", width, fmt.Sprintf(format, v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// simScheme couples a scheme with per-point configuration edits (BTB size,
// LLC latency, predictor).
type simScheme struct {
	Scheme    scheme.Scheme
	Predictor string
	BTB       int
	LLC       int
}

func (s simScheme) cfg(base config.Core) config.Core {
	c := base
	if s.BTB > 0 {
		c = c.WithBTB(s.BTB)
	}
	if s.LLC > 0 {
		c = c.WithLLCLatency(s.LLC)
	}
	return c
}
