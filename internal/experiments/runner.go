package experiments

import (
	"context"
	"fmt"
	"sort"

	"boomsim/internal/par"
	"boomsim/internal/sim"
)

// This file is the parallel experiment runner: every figure fans its
// independent (scheme, workload) simulation points across a bounded worker
// pool via ForEach/runMatrix.
//
// Determinism guarantee: each simulation point is a pure function of its
// Spec (the simulator shares no mutable state between runs), jobs are laid
// out in a deterministic order before any worker starts, and every worker
// writes only its own pre-assigned result slot. Result assembly therefore
// never depends on completion order, and the produced tables are
// byte-identical for any worker count — including Parallelism=1, the
// sequential path. TestParallelMatchesSequential pins this property.

// ForEach runs fn(0..n-1) across min(workers, n) goroutines pulling from a
// shared index stream — the module-wide bounded pool, now hosted in
// internal/par so packages below the experiment layer (sim's sampled-run
// harness) share the same dispatcher. See par.ForEach for the full
// contract: deterministic slot writes, cooperative cancellation, sequential
// execution at workers <= 1.
func ForEach(ctx context.Context, workers, n int, fn func(int)) error {
	return par.ForEach(ctx, workers, n, fn)
}

// runKey identifies a point in the run matrix.
type runKey struct {
	scheme   string
	workload string
}

// labeledScheme couples a simScheme with the unique label the tables use.
type labeledScheme struct {
	label string
	simScheme
}

// runMatrix executes every (scheme, workload) pair on the worker pool and
// returns results keyed by (scheme label, workload name). Labels must be
// unique. Errors are reported by job order (not completion order), so the
// same failure surfaces no matter the parallelism.
func runMatrix(p Params, schemes []labeledScheme) (map[runKey]sim.Result, error) {
	ws := p.workloads()
	type job struct {
		key  runKey
		spec sim.Spec
	}
	jobs := make([]job, 0, len(schemes)*len(ws))
	for _, s := range schemes {
		for _, w := range ws {
			jobs = append(jobs, job{
				key:  runKey{scheme: s.label, workload: w.Name},
				spec: p.spec(s.simScheme, w),
			})
		}
	}
	// Deterministic job order: by key, independent of how callers list
	// schemes and workloads.
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].key.scheme != jobs[j].key.scheme {
			return jobs[i].key.scheme < jobs[j].key.scheme
		}
		return jobs[i].key.workload < jobs[j].key.workload
	})

	results := make([]sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	ForEach(context.Background(), p.parallelism(), len(jobs), func(i int) {
		results[i], errs[i] = sim.Run(jobs[i].spec)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", jobs[i].key.scheme, jobs[i].key.workload, err)
		}
	}
	out := make(map[runKey]sim.Result, len(jobs))
	for i, j := range jobs {
		out[j.key] = results[i]
	}
	return out, nil
}
