package experiments

import (
	"context"
	"sync/atomic"
	"testing"

	"boomsim/internal/workload"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [100]int32
		ForEach(context.Background(), workers, len(hits), func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	ForEach(context.Background(), 4, 0, func(int) { t.Fatal("fn called for n=0") })
}

// TestForEachCancellation pins the contract RunMatrix's cancellation rides
// on: once the context fires, queued indices are never dispatched and
// ForEach reports the context error.
func TestForEachCancellation(t *testing.T) {
	t.Run("sequential", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := ForEach(ctx, 1, 100, func(i int) {
			if atomic.AddInt32(&ran, 1) == 3 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if got := atomic.LoadInt32(&ran); got != 3 {
			t.Fatalf("ran %d indices after cancellation at the 3rd, want exactly 3", got)
		}
	})
	t.Run("parallel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := ForEach(ctx, 4, 1000, func(i int) {
			if atomic.AddInt32(&ran, 1) == 10 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		// In-flight work may finish, but the bulk of the queue must have
		// been abandoned (4 workers + the dispatch channel hold only a
		// handful of indices beyond the 10th).
		if got := atomic.LoadInt32(&ran); got >= 1000 {
			t.Fatalf("all %d indices ran despite mid-stream cancellation", got)
		}
	})
	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		err := ForEach(ctx, 4, 8, func(i int) { t.Error("fn ran under a canceled context") })
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
}

// testParams is a deliberately small matrix so the determinism test runs the
// full pipeline twice in CI time.
func testParams() Params {
	apache, _ := workload.ByName("Apache")
	db2, _ := workload.ByName("DB2")
	p := Full()
	p.Workloads = []workload.Profile{apache, db2}
	p.FootprintKB = 256
	p.WarmInstrs = 20_000
	p.MeasureInstrs = 60_000
	return p
}

// TestParallelMatchesSequential pins the runner's determinism guarantee:
// the same seeds must produce byte-identical tables whether the simulation
// matrix runs sequentially or across the worker pool.
func TestParallelMatchesSequential(t *testing.T) {
	seq := testParams()
	seq.Parallelism = 1
	par := testParams()
	par.Parallelism = 8

	s7, s8, s9, err := Figures789(seq)
	if err != nil {
		t.Fatal(err)
	}
	p7, p8, p9, err := Figures789(par)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name     string
		seq, par *Table
	}{{"fig7", s7, p7}, {"fig8", s8, p8}, {"fig9", s9, p9}} {
		if pair.seq.String() != pair.par.String() {
			t.Errorf("%s differs between sequential and parallel runs:\n--- sequential\n%s--- parallel\n%s",
				pair.name, pair.seq, pair.par)
		}
		if pair.seq.CSV() != pair.par.CSV() {
			t.Errorf("%s CSV differs between sequential and parallel runs", pair.name)
		}
	}

	// Fig4 goes through the per-workload ForEach path rather than runMatrix.
	s4, err := Fig4(seq, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := Fig4(par, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if s4.String() != p4.String() {
		t.Errorf("fig4 differs between sequential and parallel runs")
	}
}
