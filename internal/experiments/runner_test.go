package experiments

import (
	"sync/atomic"
	"testing"

	"boomerang/internal/workload"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [100]int32
		ForEach(workers, len(hits), func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
}

// testParams is a deliberately small matrix so the determinism test runs the
// full pipeline twice in CI time.
func testParams() Params {
	apache, _ := workload.ByName("Apache")
	db2, _ := workload.ByName("DB2")
	p := Full()
	p.Workloads = []workload.Profile{apache, db2}
	p.FootprintKB = 256
	p.WarmInstrs = 20_000
	p.MeasureInstrs = 60_000
	return p
}

// TestParallelMatchesSequential pins the runner's determinism guarantee:
// the same seeds must produce byte-identical tables whether the simulation
// matrix runs sequentially or across the worker pool.
func TestParallelMatchesSequential(t *testing.T) {
	seq := testParams()
	seq.Parallelism = 1
	par := testParams()
	par.Parallelism = 8

	s7, s8, s9, err := Figures789(seq)
	if err != nil {
		t.Fatal(err)
	}
	p7, p8, p9, err := Figures789(par)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name     string
		seq, par *Table
	}{{"fig7", s7, p7}, {"fig8", s8, p8}, {"fig9", s9, p9}} {
		if pair.seq.String() != pair.par.String() {
			t.Errorf("%s differs between sequential and parallel runs:\n--- sequential\n%s--- parallel\n%s",
				pair.name, pair.seq, pair.par)
		}
		if pair.seq.CSV() != pair.par.CSV() {
			t.Errorf("%s CSV differs between sequential and parallel runs", pair.name)
		}
	}

	// Fig4 goes through the per-workload ForEach path rather than runMatrix.
	s4, err := Fig4(seq, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := Fig4(par, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if s4.String() != p4.String() {
		t.Errorf("fig4 differs between sequential and parallel runs")
	}
}
