// Package bpu implements the in-core branch prediction state Boomerang
// leverages: conditional direction predictors (TAGE as in the paper's
// Table I, plus the bimodal and never-taken predictors of the Figure 2
// study) and the return address stack.
//
// Direction predictors are used speculatively by the decoupled front end:
// Predict consults the current (speculative) global history, Shift pushes a
// speculative outcome, and Snapshot/Restore implement squash recovery. The
// counters themselves are updated non-speculatively at branch resolution via
// Update, using the metadata captured at prediction time.
package bpu

import (
	"boomsim/internal/isa"
	"boomsim/internal/stats"
)

// NumTageTables is the number of tagged TAGE components.
const NumTageTables = 4

// HistState is a snapshot of speculative global-history state, sized for the
// largest predictor (TAGE: 192-bit history plus per-table folded CSRs).
// Stateless predictors keep it zero.
type HistState struct {
	h   [3]uint64
	idx [NumTageTables]uint64
	tg0 [NumTageTables]uint64
	tg1 [NumTageTables]uint64
}

// Prediction carries a direction guess plus the provider metadata needed to
// update the predictor correctly when the branch resolves.
type Prediction struct {
	// Taken is the predicted direction.
	Taken bool

	provider int8 // tagged table index, or -1 for the base predictor
	altTaken bool
	baseIdx  uint32
	idx      [NumTageTables]uint32
	tag      [NumTageTables]uint16
}

// Direction is a conditional branch direction predictor with speculative
// global history.
type Direction interface {
	// Predict returns the direction guess for the branch at pc under the
	// current speculative history.
	Predict(pc isa.Addr) Prediction
	// Update trains the predictor with the resolved outcome, using the
	// prediction-time metadata.
	Update(p Prediction, pc isa.Addr, taken bool)
	// Shift pushes a speculative conditional outcome into global history.
	Shift(taken bool)
	// Snapshot captures speculative history for squash recovery.
	Snapshot() HistState
	// SnapshotInto writes the snapshot into *s (the per-entry hot path:
	// no temporary copy of the history state).
	SnapshotInto(s *HistState)
	// Restore rewinds speculative history to a snapshot.
	Restore(HistState)
	// Name identifies the predictor in experiment output.
	Name() string
	// StorageBits reports the predictor's state budget.
	StorageBits() int
}

// NeverTaken predicts every conditional branch not-taken. The paper pairs it
// with FDIP to show that prefetch coverage barely depends on direction
// accuracy (Figure 2, "FDIP Never-Taken").
type NeverTaken struct{}

// NewNeverTaken returns the trivial predictor.
func NewNeverTaken() *NeverTaken { return &NeverTaken{} }

// Predict implements Direction.
func (*NeverTaken) Predict(isa.Addr) Prediction { return Prediction{Taken: false} }

// Update implements Direction.
func (*NeverTaken) Update(Prediction, isa.Addr, bool) {}

// Shift implements Direction.
func (*NeverTaken) Shift(bool) {}

// Snapshot implements Direction.
func (*NeverTaken) Snapshot() HistState { return HistState{} }

// SnapshotInto implements Direction.
func (*NeverTaken) SnapshotInto(s *HistState) { *s = HistState{} }

// Restore implements Direction.
func (*NeverTaken) Restore(HistState) {}

// Name implements Direction.
func (*NeverTaken) Name() string { return "never-taken" }

// StorageBits implements Direction.
func (*NeverTaken) StorageBits() int { return 0 }

// Bimodal is a classic PC-indexed table of 2-bit saturating counters
// (Figure 2's "FDIP 2-bit" configuration).
type Bimodal struct {
	ctr []uint8
}

// NewBimodal builds a bimodal predictor with the given entry count (rounded
// down to a power of two).
func NewBimodal(entries int) *Bimodal {
	n := 1
	for n*2 <= entries {
		n *= 2
	}
	b := &Bimodal{ctr: make([]uint8, n)}
	for i := range b.ctr {
		b.ctr[i] = 1 // weakly not-taken
	}
	return b
}

func (b *Bimodal) index(pc isa.Addr) uint32 {
	return uint32((pc >> 2) & isa.Addr(len(b.ctr)-1))
}

// Predict implements Direction.
func (b *Bimodal) Predict(pc isa.Addr) Prediction {
	i := b.index(pc)
	return Prediction{Taken: b.ctr[i] >= 2, baseIdx: i}
}

// Update implements Direction.
func (b *Bimodal) Update(p Prediction, pc isa.Addr, taken bool) {
	i := p.baseIdx
	if taken {
		if b.ctr[i] < 3 {
			b.ctr[i]++
		}
	} else if b.ctr[i] > 0 {
		b.ctr[i]--
	}
}

// Shift implements Direction.
func (b *Bimodal) Shift(bool) {}

// Snapshot implements Direction.
func (b *Bimodal) Snapshot() HistState { return HistState{} }

// SnapshotInto implements Direction.
func (b *Bimodal) SnapshotInto(s *HistState) { *s = HistState{} }

// Restore implements Direction.
func (b *Bimodal) Restore(HistState) {}

// Name implements Direction.
func (b *Bimodal) Name() string { return "bimodal" }

// StorageBits implements Direction.
func (b *Bimodal) StorageBits() int { return 2 * len(b.ctr) }

// PublishStats registers the predictor's parameters under its namespace of
// the per-component statistics registry.
func (b *Bimodal) PublishStats(r *stats.Registry) {
	r.SetUint("entries", uint64(len(b.ctr)))
	r.SetUint("storage_bits", uint64(b.StorageBits()))
}
