package bpu

import (
	"testing"
	"testing/quick"

	"boomsim/internal/isa"
	"boomsim/internal/xrand"
)

func TestNeverTaken(t *testing.T) {
	p := NewNeverTaken()
	for pc := isa.Addr(0); pc < 1000; pc += 4 {
		if p.Predict(pc).Taken {
			t.Fatal("never-taken predicted taken")
		}
	}
	if p.StorageBits() != 0 {
		t.Fatal("never-taken must be metadata-free")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(8192)
	pc := isa.Addr(0x4000)
	for i := 0; i < 10; i++ {
		pred := b.Predict(pc)
		b.Update(pred, pc, true)
	}
	if !b.Predict(pc).Taken {
		t.Fatal("bimodal failed to learn always-taken")
	}
	for i := 0; i < 10; i++ {
		pred := b.Predict(pc)
		b.Update(pred, pc, false)
	}
	if b.Predict(pc).Taken {
		t.Fatal("bimodal failed to re-learn not-taken")
	}
}

func TestBimodalStorage(t *testing.T) {
	b := NewBimodal(8192)
	if b.StorageBits() != 2*8192 {
		t.Fatalf("storage = %d bits", b.StorageBits())
	}
}

func TestTAGEBudget(t *testing.T) {
	tg := NewTAGE(8)
	bits := tg.StorageBits()
	kb := bits / 8 / 1024
	if kb < 6 || kb > 8 {
		t.Fatalf("TAGE storage %d KB, want ~8 KB budget", kb)
	}
}

func TestTAGELearnsAlwaysTaken(t *testing.T) {
	tg := NewTAGE(8)
	pc := isa.Addr(0x1000)
	for i := 0; i < 64; i++ {
		p := tg.Predict(pc)
		tg.Update(p, pc, true)
		tg.Shift(true)
	}
	if !tg.Predict(pc).Taken {
		t.Fatal("TAGE failed on always-taken")
	}
}

func TestTAGELearnsPattern(t *testing.T) {
	// A short periodic pattern (TNTN...) is beyond bimodal but within
	// TAGE's shortest history.
	tg := NewTAGE(8)
	pc := isa.Addr(0x2000)
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		p := tg.Predict(pc)
		if i > 1000 {
			total++
			if p.Taken == taken {
				correct++
			}
		}
		tg.Update(p, pc, taken)
		tg.Shift(taken)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Fatalf("TAGE accuracy on alternating pattern = %.3f, want >= 0.95", acc)
	}
}

func TestTAGELearnsLoop(t *testing.T) {
	// Loop branch: taken 7 times, not-taken once — periodic with period 8.
	tg := NewTAGE(8)
	pc := isa.Addr(0x3000)
	correct, total := 0, 0
	for i := 0; i < 16000; i++ {
		taken := i%8 != 7
		p := tg.Predict(pc)
		if i > 8000 {
			total++
			if p.Taken == taken {
				correct++
			}
		}
		tg.Update(p, pc, taken)
		tg.Shift(taken)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.93 {
		t.Fatalf("TAGE accuracy on loop(8) = %.3f, want >= 0.93", acc)
	}
}

func TestTAGEBeatsBimodalOnCorrelated(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: pure history
	// correlation, invisible to bimodal.
	rng := xrand.New(5)
	tage := NewTAGE(8)
	bim := NewBimodal(8192)
	pcA, pcB := isa.Addr(0x100), isa.Addr(0x20000)
	tCorrect, bCorrect, total := 0, 0, 0
	prevA := false
	for i := 0; i < 30000; i++ {
		outA := rng.Bool(0.5)
		pa := tage.Predict(pcA)
		tage.Update(pa, pcA, outA)
		tage.Shift(outA)
		pb0 := bim.Predict(pcA)
		bim.Update(pb0, pcA, outA)

		outB := prevA
		pt := tage.Predict(pcB)
		pb := bim.Predict(pcB)
		if i > 10000 {
			total++
			if pt.Taken == outB {
				tCorrect++
			}
			if pb.Taken == outB {
				bCorrect++
			}
		}
		tage.Update(pt, pcB, outB)
		tage.Shift(outB)
		bim.Update(pb, pcB, outB)
		prevA = outA
	}
	tAcc := float64(tCorrect) / float64(total)
	bAcc := float64(bCorrect) / float64(total)
	if tAcc < 0.9 {
		t.Fatalf("TAGE accuracy on correlated branch = %.3f, want >= 0.9", tAcc)
	}
	if tAcc <= bAcc+0.2 {
		t.Fatalf("TAGE (%.3f) should clearly beat bimodal (%.3f) on correlation", tAcc, bAcc)
	}
}

func TestTAGESnapshotRestore(t *testing.T) {
	tg := NewTAGE(8)
	rng := xrand.New(9)
	for i := 0; i < 500; i++ {
		tg.Shift(rng.Bool(0.5))
	}
	pc := isa.Addr(0x4444)
	snap := tg.Snapshot()
	before := tg.Predict(pc)
	// Wander down a wrong path.
	for i := 0; i < 100; i++ {
		tg.Shift(rng.Bool(0.5))
	}
	tg.Restore(snap)
	after := tg.Predict(pc)
	if before.Taken != after.Taken || before.provider != after.provider ||
		before.idx != after.idx || before.tag != after.tag {
		t.Fatal("restore did not reproduce prediction state")
	}
}

func TestTAGESnapshotIsolation(t *testing.T) {
	// Snapshots must be value copies: mutating the predictor afterwards must
	// not alter an earlier snapshot's effect.
	tg := NewTAGE(8)
	snapEmpty := tg.Snapshot()
	for i := 0; i < 50; i++ {
		tg.Shift(true)
	}
	tg.Restore(snapEmpty)
	fresh := NewTAGE(8)
	pc := isa.Addr(0x8080)
	if tg.Predict(pc).idx != fresh.Predict(pc).idx {
		t.Fatal("restored-to-empty history differs from fresh predictor")
	}
}

func TestTAGEDeterminism(t *testing.T) {
	run := func() []bool {
		tg := NewTAGE(8)
		rng := xrand.New(3)
		var out []bool
		for i := 0; i < 5000; i++ {
			pc := isa.Addr(0x1000 + (rng.Uint64()%64)*4)
			taken := rng.Bool(0.6)
			p := tg.Predict(pc)
			out = append(out, p.Taken)
			tg.Update(p, pc, taken)
			tg.Shift(taken)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TAGE nondeterministic at step %d", i)
		}
	}
}

func TestFoldedRegMatchesDirectFold(t *testing.T) {
	// The incrementally-maintained folded register must equal folding the
	// full history register directly.
	f := newFoldedReg(17, 7)
	var h histReg
	rng := xrand.New(11)
	for i := 0; i < 2000; i++ {
		bit := uint64(0)
		if rng.Bool(0.5) {
			bit = 1
		}
		old := h.at(f.origLen - 1)
		f.shift(bit, old)
		h.shift(bit)

		want := directFold(&h, f.origLen, f.bits)
		if f.val != want {
			t.Fatalf("step %d: folded=%#x direct=%#x", i, f.val, want)
		}
	}
}

// directFold folds the newest length bits of h into width bits by the same
// "rotate-by-one per shift" scheme the incremental register implements:
// history bit i (0 = newest) lands at position (length-1-i+rotations) where
// the accumulated rotation equals the number of shifts... easiest correct
// reference: rebuild by replaying shifts.
func directFold(h *histReg, length, bits int) uint64 {
	ref := newFoldedReg(length, bits)
	// Replay from oldest to newest.
	var empty histReg
	replay := empty
	for i := 191; i >= 0; i-- {
		bit := h.at(i)
		old := replay.at(length - 1)
		ref.shift(bit, old)
		replay.shift(bit)
	}
	return ref.val
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(32)
	r.Push(100)
	r.Push(200)
	if v, ok := r.Pop(); !ok || v != 200 {
		t.Fatal("pop order wrong")
	}
	if v, ok := r.Pop(); !ok || v != 100 {
		t.Fatal("pop order wrong")
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty should fail")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 6; i++ {
		r.Push(isa.Addr(i * 100))
	}
	// Stack holds 300..600; pops yield 600,500,400,300 then empty.
	want := []isa.Addr{600, 500, 400, 300}
	for _, w := range want {
		v, ok := r.Pop()
		if !ok || v != w {
			t.Fatalf("got %d, want %d", v, w)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("expected empty after overflow wrap")
	}
}

func TestRASCheckpointRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	cp := r.Checkpoint()
	r.Pop()
	r.Push(99)
	r.Push(98)
	r.Restore(cp)
	if v, ok := r.Peek(); !ok || v != 2 {
		t.Fatalf("restore failed: top=%d", v)
	}
	if r.Depth() != 2 {
		t.Fatalf("depth after restore = %d", r.Depth())
	}
}

func TestRASCorruptionBelowTOSPersists(t *testing.T) {
	// Hardware-faithful: wrong-path pushes that overwrite entries below the
	// checkpointed TOS are not repaired.
	r := NewRAS(2)
	r.Push(10)
	r.Push(20)
	cp := r.Checkpoint()
	r.Pop()
	r.Pop()
	r.Push(77) // overwrites slot of 10
	r.Push(88) // overwrites slot of 20 (TOS, will be repaired)
	r.Restore(cp)
	if v, _ := r.Pop(); v != 20 {
		t.Fatalf("TOS should be repaired to 20, got %d", v)
	}
	if v, _ := r.Pop(); v == 10 {
		t.Fatal("deep corruption should persist, but entry was repaired")
	}
}

func TestRASProperty(t *testing.T) {
	// Without overflow, RAS behaves as a stack.
	if err := quick.Check(func(vals []uint32) bool {
		if len(vals) > 30 {
			vals = vals[:30]
		}
		r := NewRAS(32)
		for _, v := range vals {
			r.Push(isa.Addr(v))
		}
		for i := len(vals) - 1; i >= 0; i-- {
			got, ok := r.Pop()
			if !ok || got != isa.Addr(vals[i]) {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTAGEPredictUpdate(b *testing.B) {
	tg := NewTAGE(8)
	rng := xrand.New(1)
	pcs := make([]isa.Addr, 1024)
	for i := range pcs {
		pcs[i] = isa.Addr(0x1000 + i*16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i%len(pcs)]
		taken := rng.Bool(0.7)
		p := tg.Predict(pc)
		tg.Update(p, pc, taken)
		tg.Shift(taken)
	}
}

func BenchmarkTAGESnapshot(b *testing.B) {
	tg := NewTAGE(8)
	for i := 0; i < b.N; i++ {
		s := tg.Snapshot()
		_ = s
	}
}
