package bpu

import (
	"boomsim/internal/isa"
	"boomsim/internal/stats"
)

// TAGE implements the tagged-geometric-history-length predictor of Seznec &
// Michaud within the paper's 8 KB budget: a 4K-entry 2-bit bimodal base plus
// four tagged tables of 1K entries (9-bit tags, 3-bit counters, 2-bit useful
// bits) over geometric history lengths {5, 17, 44, 130}.
//
// Global history is speculative: the decoupled front end shifts a predicted
// outcome per conditional branch and restores a snapshot on squash. The
// folded index/tag registers are maintained incrementally per shift, exactly
// like the hardware circular shift registers, so snapshots are O(1)-sized.
type TAGE struct {
	base []uint8 // 2-bit counters

	tables [NumTageTables]tageTable
	hist   histReg

	lfsr   uint32 // deterministic allocation tie-breaking
	clock  uint32 // periodic useful-bit aging
	resets uint32
}

type tageEntry struct {
	tag uint16
	ctr uint8 // 3-bit: taken if >= 4
	u   uint8 // 2-bit useful
}

type tageTable struct {
	entries []tageEntry
	histLen int
	idxBits int
	tagBits int

	// oldWord/oldBit locate history bit histLen-1 (the bit falling out of
	// this table's window on a shift), precomputed so the per-prediction
	// Shift path performs no division.
	oldWord int
	oldBit  uint

	// Incrementally folded history (circular shift registers): one for the
	// index, two for the tag (per Seznec's reference implementation).
	idxCSR, tagCSR0, tagCSR1 foldedReg
}

// histReg is a 192-bit speculative global history shift register; bit 0 is
// the most recent outcome.
type histReg [3]uint64

func (h *histReg) shift(bit uint64) {
	h[2] = h[2]<<1 | h[1]>>63
	h[1] = h[1]<<1 | h[0]>>63
	h[0] = h[0]<<1 | bit
}

// at returns history bit i (0 = newest). i must be < 192.
func (h *histReg) at(i int) uint64 {
	return (h[i/64] >> (i % 64)) & 1
}

type foldedReg struct {
	val     uint64
	origLen int    // history length being folded
	bits    int    // compressed width
	wrap    uint   // origLen % bits, precomputed off the shift path
	mask    uint64 // 1<<bits - 1, precomputed off the shift path
}

func newFoldedReg(origLen, bits int) foldedReg {
	return foldedReg{origLen: origLen, bits: bits, wrap: uint(origLen % bits), mask: 1<<uint(bits) - 1}
}

func (f *foldedReg) shift(newBit, oldBit uint64) {
	f.val = f.val<<1 | newBit
	f.val ^= oldBit << f.wrap
	f.val ^= f.val >> f.bits
	f.val &= f.mask
}

var tageHistLens = [NumTageTables]int{5, 17, 44, 130}

// NewTAGE builds the predictor. budgetKB scales table sizes; the paper's
// configuration is 8 KB.
func NewTAGE(budgetKB int) *TAGE {
	// Scale from the 8KB reference: base 4K entries, tagged 1K each.
	scale := budgetKB
	if scale < 1 {
		scale = 1
	}
	baseEntries := 512 * scale
	tagEntries := 128 * scale
	t := &TAGE{base: make([]uint8, pow2Floor(baseEntries))}
	for i := range t.base {
		t.base[i] = 1
	}
	for i := range t.tables {
		n := pow2Floor(tagEntries)
		idxBits := log2(n)
		t.tables[i] = tageTable{
			entries: make([]tageEntry, n),
			histLen: tageHistLens[i],
			idxBits: idxBits,
			tagBits: 9,
			oldWord: (tageHistLens[i] - 1) / 64,
			oldBit:  uint((tageHistLens[i] - 1) % 64),
			idxCSR:  newFoldedReg(tageHistLens[i], idxBits),
			tagCSR0: newFoldedReg(tageHistLens[i], 9),
			tagCSR1: newFoldedReg(tageHistLens[i], 8),
		}
	}
	t.lfsr = 0xACE1
	return t
}

func pow2Floor(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func (t *TAGE) baseIndex(pc isa.Addr) uint32 {
	return uint32((pc >> 2) & isa.Addr(len(t.base)-1))
}

func (tb *tageTable) index(pc isa.Addr) uint32 {
	h := uint64(pc>>2) ^ uint64(pc)>>(uint(tb.idxBits)+2) ^ tb.idxCSR.val
	return uint32(h & uint64(len(tb.entries)-1))
}

func (tb *tageTable) tagOf(pc isa.Addr) uint16 {
	h := uint64(pc>>2) ^ tb.tagCSR0.val ^ tb.tagCSR1.val<<1
	return uint16(h & (1<<tb.tagBits - 1))
}

// Predict implements Direction.
func (t *TAGE) Predict(pc isa.Addr) Prediction {
	p := Prediction{provider: -1}
	p.baseIdx = t.baseIndex(pc)
	basePred := t.base[p.baseIdx] >= 2
	p.Taken = basePred
	p.altTaken = basePred

	for i := 0; i < NumTageTables; i++ {
		tb := &t.tables[i]
		p.idx[i] = tb.index(pc)
		p.tag[i] = tb.tagOf(pc)
	}
	// Longest-history matching component provides; next match is altpred.
	for i := NumTageTables - 1; i >= 0; i-- {
		e := &t.tables[i].entries[p.idx[i]]
		if e.tag != p.tag[i] {
			continue
		}
		if p.provider < 0 {
			p.provider = int8(i)
			p.Taken = e.ctr >= 4
		} else {
			p.altTaken = e.ctr >= 4
			return p
		}
	}
	if p.provider >= 0 {
		p.altTaken = basePred
	}
	return p
}

// Update implements Direction: trains counters, useful bits, and allocates
// on mispredictions.
func (t *TAGE) Update(p Prediction, pc isa.Addr, taken bool) {
	correct := p.Taken == taken
	if p.provider >= 0 {
		e := &t.tables[p.provider].entries[p.idx[p.provider]]
		// Guard against the entry having been replaced since prediction.
		if e.tag == p.tag[p.provider] {
			bump3(&e.ctr, taken)
			if p.Taken != p.altTaken {
				if correct {
					if e.u < 3 {
						e.u++
					}
				} else if e.u > 0 {
					e.u--
				}
			}
			// Train the base when the provider entry is still weak.
			if e.ctr == 3 || e.ctr == 4 {
				bump2(&t.base[p.baseIdx], taken)
			}
		} else {
			bump2(&t.base[p.baseIdx], taken)
		}
	} else {
		bump2(&t.base[p.baseIdx], taken)
	}

	if !correct {
		t.allocate(p, taken)
	}

	// Periodic useful-bit aging keeps dead entries reclaimable.
	t.clock++
	if t.clock >= 1<<18 {
		t.clock = 0
		t.resets++
		for i := range t.tables {
			for j := range t.tables[i].entries {
				t.tables[i].entries[j].u >>= 1
			}
		}
	}
}

func (t *TAGE) allocate(p Prediction, taken bool) {
	start := int(p.provider) + 1
	if start >= NumTageTables {
		return
	}
	// Collect candidate tables with a non-useful victim.
	var candidates [NumTageTables]int
	n := 0
	for i := start; i < NumTageTables; i++ {
		if t.tables[i].entries[p.idx[i]].u == 0 {
			candidates[n] = i
			n++
		}
	}
	if n == 0 {
		for i := start; i < NumTageTables; i++ {
			e := &t.tables[i].entries[p.idx[i]]
			if e.u > 0 {
				e.u--
			}
		}
		return
	}
	// Prefer shorter history (standard TAGE bias: pick the first candidate
	// with probability 1/2, else advance), via a small LFSR for determinism.
	pick := candidates[0]
	for k := 0; k < n-1; k++ {
		if t.nextRand()&1 == 0 {
			break
		}
		pick = candidates[k+1]
	}
	e := &t.tables[pick].entries[p.idx[pick]]
	e.tag = p.tag[pick]
	e.u = 0
	if taken {
		e.ctr = 4
	} else {
		e.ctr = 3
	}
}

func (t *TAGE) nextRand() uint32 {
	// 16-bit Fibonacci LFSR.
	bit := (t.lfsr ^ t.lfsr>>2 ^ t.lfsr>>3 ^ t.lfsr>>5) & 1
	t.lfsr = t.lfsr>>1 | bit<<15
	return t.lfsr
}

// Shift implements Direction: pushes a speculative outcome and advances all
// folded registers.
func (t *TAGE) Shift(taken bool) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	for i := range t.tables {
		tb := &t.tables[i]
		old := (t.hist[tb.oldWord] >> tb.oldBit) & 1
		tb.idxCSR.shift(bit, old)
		tb.tagCSR0.shift(bit, old)
		tb.tagCSR1.shift(bit, old)
	}
	t.hist.shift(bit)
}

// Snapshot implements Direction.
func (t *TAGE) Snapshot() HistState {
	var s HistState
	t.SnapshotInto(&s)
	return s
}

// SnapshotInto implements Direction, writing the snapshot in place (the
// engine captures one per FTQ entry; writing straight into the entry avoids
// copying the 88-byte state through a temporary).
func (t *TAGE) SnapshotInto(s *HistState) {
	s.h = t.hist
	for i := range t.tables {
		s.idx[i] = t.tables[i].idxCSR.val
		s.tg0[i] = t.tables[i].tagCSR0.val
		s.tg1[i] = t.tables[i].tagCSR1.val
	}
}

// Restore implements Direction.
func (t *TAGE) Restore(s HistState) {
	t.hist = s.h
	for i := range t.tables {
		t.tables[i].idxCSR.val = s.idx[i]
		t.tables[i].tagCSR0.val = s.tg0[i]
		t.tables[i].tagCSR1.val = s.tg1[i]
	}
}

// Name implements Direction.
func (t *TAGE) Name() string { return "tage" }

// StorageBits implements Direction.
func (t *TAGE) StorageBits() int {
	bits := 2 * len(t.base)
	for i := range t.tables {
		perEntry := t.tables[i].tagBits + 3 + 2
		bits += perEntry * len(t.tables[i].entries)
	}
	return bits
}

// PublishStats registers the predictor's counters under its namespace of
// the per-component statistics registry.
func (t *TAGE) PublishStats(r *stats.Registry) {
	r.SetUint("tables", uint64(len(t.tables)))
	r.SetUint("base_entries", uint64(len(t.base)))
	r.SetUint("useful_resets", uint64(t.resets))
	r.SetUint("storage_bits", uint64(t.StorageBits()))
}

func bump2(c *uint8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func bump3(c *uint8, taken bool) {
	if taken {
		if *c < 7 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}
