package bpu

import "boomsim/internal/isa"

// RAS is a circular return address stack with checkpoint-based recovery.
// Recovery restores the top pointer and the top-of-stack value (the standard
// hardware scheme); deeper entries clobbered by wrong-path pushes stay
// corrupted, which faithfully models the residual return mispredictions a
// real front end sees.
type RAS struct {
	buf   []isa.Addr
	top   int // index of the current top element (valid when count > 0)
	count int
}

// RASCheckpoint captures recovery state at prediction time.
type RASCheckpoint struct {
	top, count int
	tos        isa.Addr
}

// NewRAS builds a stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth < 1 {
		depth = 1
	}
	return &RAS{buf: make([]isa.Addr, depth), top: -1}
}

// Push records a return address (wrapping and overwriting on overflow, as
// hardware does).
func (r *RAS) Push(ret isa.Addr) {
	r.top = (r.top + 1) % len(r.buf)
	r.buf[r.top] = ret
	if r.count < len(r.buf) {
		r.count++
	}
}

// Pop predicts a return target. ok is false when the stack is empty.
func (r *RAS) Pop() (ret isa.Addr, ok bool) {
	if r.count == 0 {
		return 0, false
	}
	ret = r.buf[r.top]
	r.top--
	if r.top < 0 {
		r.top += len(r.buf)
	}
	r.count--
	return ret, true
}

// Peek returns the top without popping.
func (r *RAS) Peek() (ret isa.Addr, ok bool) {
	if r.count == 0 {
		return 0, false
	}
	return r.buf[r.top], true
}

// Depth returns the current element count.
func (r *RAS) Depth() int { return r.count }

// Checkpoint captures top pointer + TOS value.
func (r *RAS) Checkpoint() RASCheckpoint {
	cp := RASCheckpoint{top: r.top, count: r.count}
	if r.count > 0 {
		cp.tos = r.buf[r.top]
	}
	return cp
}

// Restore rewinds to a checkpoint. Entries below the checkpointed top that
// were overwritten by wrong-path activity are not repaired.
func (r *RAS) Restore(cp RASCheckpoint) {
	r.top = cp.top
	r.count = cp.count
	if r.count > 0 {
		r.buf[r.top] = cp.tos
	}
}
