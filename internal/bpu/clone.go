// Clone support: deep copies of predictor state so a warmed instance can be
// forked and advanced without perturbing the original (see internal/sim's
// warm-state arena). Every clone must be behaviourally indistinguishable
// from its source — same tables, same speculative history, same counters.
package bpu

import "boomsim/internal/isa"

// Clone returns an independent deep copy of the predictor.
func (t *TAGE) Clone() *TAGE {
	c := *t
	c.base = append([]uint8(nil), t.base...)
	for i := range c.tables {
		c.tables[i].entries = append([]tageEntry(nil), t.tables[i].entries...)
	}
	return &c
}

// Clone returns an independent deep copy of the predictor.
func (b *Bimodal) Clone() *Bimodal {
	return &Bimodal{ctr: append([]uint8(nil), b.ctr...)}
}

// Clone returns the receiver: NeverTaken is stateless, so sharing it is safe.
func (n *NeverTaken) Clone() *NeverTaken { return n }

// Clone returns an independent deep copy of the stack.
func (r *RAS) Clone() *RAS {
	c := *r
	c.buf = append([]isa.Addr(nil), r.buf...)
	return &c
}
