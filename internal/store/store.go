// Package store is a disk-backed, content-addressed result store: the
// durable layer under boomsimd's in-memory LRU. Entries are keyed on a
// configuration fingerprint (boomsim's Simulation.Fingerprint — lowercase
// hex SHA-256), so a result written by one process is valid for every
// process that ever computes the same configuration, and a worker restart
// starts warm instead of cold.
//
// Crash safety is the point, so every entry is an envelope carrying the
// SHA-256 of its payload, writes are temp-file-plus-rename (never observable
// half-written under POSIX rename semantics), and every read re-verifies the
// digest. An entry that fails verification — torn by a crash mid-write, bit
// rotted, or truncated — is quarantined (moved aside, counted, never served)
// and reported as a miss so the caller recomputes it. Corrupt bytes cannot
// reach a caller.
//
// The filesystem is reached through the FS interface so the fault-injection
// harness (internal/chaos) can tear writes and fail operations
// deterministically in tests; production code uses the real filesystem.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FS is the slice of filesystem the store needs. The chaos harness wraps it
// to inject partial writes and errors; osFS is the production
// implementation.
type FS interface {
	ReadFile(name string) ([]byte, error)
	// WriteFile must create or truncate name with data; the store only ever
	// calls it on temp files that are renamed into place afterwards.
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm os.FileMode) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OSFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) Remove(name string) error                     { return os.Remove(name) }
func (OSFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (OSFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// envelope is the on-disk entry format: the payload plus enough identity to
// verify it. Digest covers exactly the payload bytes; Key repeats the
// entry's fingerprint so a file renamed or hard-linked to the wrong name is
// also caught.
type envelope struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	Digest  string          `json:"digest"`
	Payload json.RawMessage `json:"payload"`
}

const (
	envelopeVersion = 1
	quarantineDir   = "quarantine"
	tmpPrefix       = "tmp-"
)

// Options tunes Open.
type Options struct {
	// FS substitutes the filesystem (default the real one).
	FS FS
	// MaxBytes caps the store's payload bytes; 0 = unbounded. When a Put
	// pushes past the cap, the oldest entries (by modification time) are
	// garbage-collected down to ~90% of the cap.
	MaxBytes int64
	// Logger receives store lifecycle events — quarantined corruptions (Warn,
	// each one is data the store refused to serve) and GC passes (Info). Nil
	// discards them.
	Logger *slog.Logger
}

// Store is a goroutine-safe content-addressed result store rooted at one
// directory. Entries live at <dir>/<fp[:2]>/<fp>; quarantined corpses at
// <dir>/quarantine/.
type Store struct {
	dir string
	fs  FS
	max int64
	log *slog.Logger

	mu      sync.Mutex // serialises writes and GC; reads only take it for counters
	entries int64
	bytes   int64

	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	writeErrors atomic.Uint64
	quarantined atomic.Uint64
}

// Stats is a point-in-time snapshot of the store's state.
type Stats struct {
	Dir         string `json:"dir"`
	Entries     int64  `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
	// Quarantined counts entries that failed verification on read and were
	// moved aside — each one is a corruption the store refused to serve.
	Quarantined uint64 `json:"quarantined"`
}

// Open creates (if needed) and scans the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Store{dir: dir, fs: fsys, max: opts.MaxBytes, log: logger}
	if err := fsys.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan counts the surviving entries so Stats is meaningful from the first
// request after a restart. Leftover temp files (a crash mid-Put) are removed:
// they were never visible and never will be.
func (s *Store) scan() error {
	shards, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var entries, bytes int64
	for _, shard := range shards {
		if !shard.IsDir() || shard.Name() == quarantineDir {
			continue
		}
		files, err := s.fs.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasPrefix(name, tmpPrefix) {
				s.fs.Remove(filepath.Join(s.dir, shard.Name(), name))
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			entries++
			bytes += info.Size()
		}
	}
	s.mu.Lock()
	s.entries, s.bytes = entries, bytes
	s.mu.Unlock()
	return nil
}

func (s *Store) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key)
}

// Get returns the verified payload stored under key, or (nil, false) on a
// miss. A present-but-unverifiable entry counts as a miss: it is moved to
// the quarantine directory and will be recomputed by the caller — corrupt
// bytes are never returned.
func (s *Store) Get(key string) ([]byte, bool) {
	raw, err := s.fs.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		s.quarantine(key, int64(len(raw)))
		s.misses.Add(1)
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if env.Key != key || env.Digest != hex.EncodeToString(sum[:]) {
		s.quarantine(key, int64(len(raw)))
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return env.Payload, true
}

// quarantine moves a corrupt entry aside so it is never served again and an
// operator can inspect it; if even the move fails the entry is removed.
func (s *Store) quarantine(key string, size int64) {
	s.quarantined.Add(1)
	dst := filepath.Join(s.dir, quarantineDir, key)
	if err := s.fs.Rename(s.path(key), dst); err != nil {
		s.fs.Remove(s.path(key))
		s.log.Warn("store: corrupt entry removed (quarantine move failed)",
			"key", key, "err", err)
	} else {
		s.log.Warn("store: corrupt entry quarantined", "key", key, "quarantine", dst)
	}
	s.mu.Lock()
	s.entries--
	s.bytes -= size
	s.mu.Unlock()
}

// Put durably stores payload under key: envelope with digest, temp file,
// rename. A failed Put leaves no visible entry and is reported in Stats;
// the caller's in-memory result is unaffected.
func (s *Store) Put(key string, payload []byte) error {
	sum := sha256.Sum256(payload)
	raw, err := json.Marshal(envelope{
		V:       envelopeVersion,
		Key:     key,
		Digest:  hex.EncodeToString(sum[:]),
		Payload: json.RawMessage(payload),
	})
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: encoding %s: %w", key, err)
	}
	dst := s.path(key)
	dir := filepath.Dir(dst)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(dir, tmpPrefix+filepath.Base(dst))
	if err := s.fs.WriteFile(tmp, raw, 0o644); err != nil {
		s.writeErrors.Add(1)
		s.fs.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	// Guard the rename: a faulty filesystem may have acknowledged a torn
	// write. Verifying before rename keeps the visible entry set clean; the
	// read path re-verifies anyway, so this is belt and braces, not the
	// safety boundary.
	if got, err := s.fs.ReadFile(tmp); err != nil || len(got) != len(raw) {
		s.writeErrors.Add(1)
		s.fs.Remove(tmp)
		return fmt.Errorf("store: short write for %s", key)
	}
	fresh := true
	if info, err := s.fs.Stat(dst); err == nil {
		fresh = false
		s.bytes -= info.Size()
	}
	if err := s.fs.Rename(tmp, dst); err != nil {
		s.writeErrors.Add(1)
		s.fs.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if fresh {
		s.entries++
	}
	s.bytes += int64(len(raw))
	s.writes.Add(1)
	if s.max > 0 && s.bytes > s.max {
		s.gcLocked()
	}
	return nil
}

// gcLocked evicts oldest-modified entries until the store is back under 90%
// of its byte cap. Called with mu held.
func (s *Store) gcLocked() {
	type candidate struct {
		path  string
		size  int64
		mtime int64
	}
	var all []candidate
	shards, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, shard := range shards {
		if !shard.IsDir() || shard.Name() == quarantineDir {
			continue
		}
		files, err := s.fs.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			info, err := f.Info()
			if err != nil {
				continue
			}
			all = append(all, candidate{
				path:  filepath.Join(s.dir, shard.Name(), f.Name()),
				size:  info.Size(),
				mtime: info.ModTime().UnixNano(),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime < all[j].mtime })
	target := s.max * 9 / 10
	var evicted int
	var freed int64
	for _, c := range all {
		if s.bytes <= target {
			break
		}
		if err := s.fs.Remove(c.path); err == nil {
			s.entries--
			s.bytes -= c.size
			evicted++
			freed += c.size
		}
	}
	s.log.Info("store: gc pass",
		"evicted", evicted, "freed_bytes", freed, "bytes", s.bytes, "cap", s.max)
}

// Stats snapshots the store counters; safe to call concurrently with reads
// and writes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := s.entries, s.bytes
	s.mu.Unlock()
	return Stats{
		Dir:         s.dir,
		Entries:     entries,
		Bytes:       bytes,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		Quarantined: s.quarantined.Load(),
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

var _ FS = OSFS{}
