package store_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boomsim/internal/chaos"
	"boomsim/internal/store"
)

func key(i int) string {
	return fmt.Sprintf("%02x%060x", i%256, i)
}

func mustOpen(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	s, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), store.Options{})
	payload := []byte(`{"ipc":1.25,"scheme":"Boomerang"}`)
	if err := s.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(1))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("Get of an absent key reported a hit")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 entry / 1 hit / 1 miss / 1 write", st)
	}
	if st.Bytes <= int64(len(payload)) {
		t.Errorf("Bytes = %d, want > payload size (envelope overhead)", st.Bytes)
	}
}

func TestEntriesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	for i := 0; i < 20; i++ {
		if err := s.Put(key(i), []byte(fmt.Sprintf(`{"cell":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// A different process opens the same directory: every entry must be
	// visible and verified — this is the worker-restart survival property.
	s2 := mustOpen(t, dir, store.Options{})
	if st := s2.Stats(); st.Entries != 20 {
		t.Fatalf("reopened store sees %d entries, want 20", st.Entries)
	}
	for i := 0; i < 20; i++ {
		got, ok := s2.Get(key(i))
		if !ok || string(got) != fmt.Sprintf(`{"cell":%d}`, i) {
			t.Fatalf("entry %d did not survive reopen: %q, %v", i, got, ok)
		}
	}
}

func TestCorruptEntryIsQuarantinedNeverServed(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	k := key(7)
	if err := s.Put(k, []byte(`{"cell":7}`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k[:2], k)
	if err := chaos.Corrupt(path); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k); ok {
		t.Fatalf("corrupt entry served: %q", got)
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
	if st.Entries != 0 {
		t.Errorf("Entries = %d, want 0 after quarantine", st.Entries)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", k)); err != nil {
		t.Errorf("corrupt entry was not moved to quarantine: %v", err)
	}
	// A fresh Put of the recomputed result must succeed and serve cleanly.
	if err := s.Put(k, []byte(`{"cell":7}`)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k); !ok || string(got) != `{"cell":7}` {
		t.Fatalf("recomputed entry not served: %q, %v", got, ok)
	}
}

func TestTruncatedEntryIsQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	k := key(9)
	if err := s.Put(k, []byte(`{"cell":9,"stats":{"a":1,"b":2}}`)); err != nil {
		t.Fatal(err)
	}
	if err := chaos.Tear(filepath.Join(dir, k[:2], k), 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("truncated entry served")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
}

func TestMisfiledEntryIsQuarantined(t *testing.T) {
	// An entry whose envelope key disagrees with its filename (a bad copy or
	// a tampered file) must not be served under the wrong identity.
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	if err := s.Put(key(1), []byte(`{"cell":1}`)); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, key(1)[:2], key(1))
	dst := filepath.Join(dir, key(2)[:2], key(2))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("entry served under a fingerprint it does not belong to")
	}
}

func TestTornWritesNeverServeCorruptData(t *testing.T) {
	// Torn writes on every single write: no Get may ever return bytes other
	// than what was Put, and successful-looking Puts that actually tore are
	// caught at read (or by the store's own pre-rename verification).
	dir := t.TempDir()
	ffs := chaos.NewFS(nil, 42, chaos.FSPlan{PTornWrite: 0.5, PWriteError: 0.2})
	s := mustOpen(t, dir, store.Options{FS: ffs})
	good := 0
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf(`{"cell":%d,"payload":"%s"}`, i, strings.Repeat("x", i)))
		if err := s.Put(key(i), payload); err == nil {
			good++
		}
		if got, ok := s.Get(key(i)); ok && !bytes.Equal(got, payload) {
			t.Fatalf("Get(%d) returned corrupt bytes: %q", i, got)
		}
	}
	torn, fails := ffs.FSCounts()
	if torn == 0 || fails == 0 {
		t.Fatalf("fault plan injected nothing (torn=%d fails=%d) — test is vacuous", torn, fails)
	}
	if good == 0 {
		t.Fatal("no Put ever succeeded — fault plan too hot to prove anything")
	}
	if st := s.Stats(); st.WriteErrors == 0 {
		t.Error("store reported zero write errors under an injecting filesystem")
	}
}

func TestCrashedPutLeavesNoVisibleEntry(t *testing.T) {
	// Simulate a crash between temp write and rename: a leftover tmp file
	// must be swept on reopen and never surface as an entry.
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	if err := s.Put(key(3), []byte(`{"cell":3}`)); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, key(4)[:2], "tmp-"+key(4))
	if err := os.MkdirAll(filepath.Dir(tmp), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, []byte(`{"v":1,"key":"partial`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, store.Options{})
	if st := s2.Stats(); st.Entries != 1 {
		t.Fatalf("reopened store sees %d entries, want 1 (tmp debris must not count)", st.Entries)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("leftover tmp file survived reopen")
	}
	if _, ok := s2.Get(key(4)); ok {
		t.Fatal("crashed Put's key reported a hit")
	}
}

func TestGCEvictsOldestWhenOverCap(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{MaxBytes: 2000})
	for i := 0; i < 40; i++ {
		if err := s.Put(key(i), []byte(fmt.Sprintf(`{"cell":%d,"pad":"%s"}`, i, strings.Repeat("p", 64)))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > 2000 {
		t.Errorf("Bytes = %d, want <= cap after GC", st.Bytes)
	}
	if st.Entries >= 40 {
		t.Errorf("Entries = %d, want evictions under a byte cap", st.Entries)
	}
	// Newest entries should have survived.
	if _, ok := s.Get(key(39)); !ok {
		t.Error("most recent entry was evicted")
	}
}

func TestOverwriteDoesNotDoubleCount(t *testing.T) {
	s := mustOpen(t, t.TempDir(), store.Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(key(5), []byte(`{"cell":5}`)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Errorf("Entries = %d after 3 identical Puts, want 1", st.Entries)
	}
}
